#include "predicate/pattern_compiler.h"

#include "json/writer.h"

namespace ciao {

namespace {

/// Last segment of a dotted path: nested fields serialize with their own
/// (unqualified) key, so the pattern uses the leaf name.
std::string_view LeafKey(std::string_view field) {
  const size_t dot = field.rfind('.');
  return dot == std::string_view::npos ? field : field.substr(dot + 1);
}

/// `"key":` with JSON escaping — the serialized form a present key takes.
std::string KeyPattern(std::string_view field) {
  std::string out = "\"";
  json::EscapeStringTo(LeafKey(field), &out);
  out += "\":";
  return out;
}

}  // namespace

Result<RawPredicateProgram> RawPredicateProgram::Compile(
    const SimplePredicate& p, SearchKernel kernel) {
  RawPredicateProgram prog;
  prog.kind_ = p.kind;
  switch (p.kind) {
    case PredicateKind::kExactMatch: {
      if (!p.operand.is_string()) {
        return Status::InvalidArgument(
            "exact match requires a string operand; use key-value for "
            "numbers");
      }
      // Quoted + escaped: the value always appears as "Bob" in the
      // canonical serialization, so including the quotes cannot introduce
      // false negatives and trims false positives.
      std::string pattern = "\"";
      json::EscapeStringTo(p.operand.as_string(), &pattern);
      pattern += "\"";
      prog.primary_ = CompiledPattern(std::move(pattern), kernel);
      return prog;
    }
    case PredicateKind::kSubstringMatch: {
      if (!p.operand.is_string()) {
        return Status::InvalidArgument("substring match requires a string");
      }
      // Escaped but NOT quoted: the needle appears inside a longer quoted
      // value. Escaping is per-character, so `text contains needle` implies
      // `escape(text) contains escape(needle)` — no false negatives.
      std::string pattern;
      json::EscapeStringTo(p.operand.as_string(), &pattern);
      prog.primary_ = CompiledPattern(std::move(pattern), kernel);
      return prog;
    }
    case PredicateKind::kKeyPresence: {
      prog.primary_ = CompiledPattern(KeyPattern(p.field), kernel);
      return prog;
    }
    case PredicateKind::kKeyValueMatch: {
      if (!(p.operand.is_number() || p.operand.is_bool() ||
            p.operand.is_string())) {
        return Status::InvalidArgument(
            "key-value match requires a scalar operand");
      }
      prog.primary_ = CompiledPattern(KeyPattern(p.field), kernel);
      prog.value_ = CompiledPattern(json::Write(p.operand), kernel);
      return prog;
    }
    case PredicateKind::kRangeLess:
      // Range predicates would produce false negatives under substring
      // matching (paper §IV-B) — refuse to push them down.
      return Status::Unsupported(
          "range/inequality predicates cannot be evaluated on raw JSON");
  }
  return Status::Internal("unreachable predicate kind");
}

bool RawPredicateProgram::Matches(std::string_view record) const {
  switch (kind_) {
    case PredicateKind::kExactMatch:
    case PredicateKind::kSubstringMatch:
    case PredicateKind::kKeyPresence:
      return primary_.FindIn(record) != std::string_view::npos;
    case PredicateKind::kKeyValueMatch: {
      // Paper §IV-B: find the key string, then look for the value string
      // before the next key-value delimiter. Two robustness details:
      //  1. iterate over *all* key occurrences — the key pattern may match
      //     inside a longer key (e.g. "score": inside "linear_score":),
      //     and stopping at the first occurrence could miss the real one;
      //  2. begin the delimiter scan only after enough room for the value,
      //     so a comma inside the matched value cannot truncate the
      //     window. Both rules only widen the window: false positives
      //     stay possible, false negatives stay impossible.
      size_t pos = primary_.FindIn(record);
      while (pos != std::string_view::npos) {
        const size_t value_start = pos + primary_.length();
        const size_t scan_from =
            std::min(record.size(), value_start + value_.length());
        size_t window_end = record.find(',', scan_from);
        if (window_end == std::string_view::npos) window_end = record.size();
        const std::string_view window =
            record.substr(value_start, window_end - value_start);
        if (value_.FindIn(window) != std::string_view::npos) return true;
        pos = primary_.FindIn(record, pos + 1);
      }
      return false;
    }
    case PredicateKind::kRangeLess:
      return false;  // Never compiled; unreachable.
  }
  return false;
}

std::vector<std::string> RawPredicateProgram::PatternStrings() const {
  if (kind_ == PredicateKind::kKeyValueMatch) {
    return {primary_.pattern(), value_.pattern()};
  }
  return {primary_.pattern()};
}

size_t RawPredicateProgram::TotalPatternLength() const {
  size_t total = primary_.length();
  if (kind_ == PredicateKind::kKeyValueMatch) total += value_.length();
  return total;
}

Result<RawClauseProgram> RawClauseProgram::Compile(const Clause& clause,
                                                   SearchKernel kernel) {
  if (clause.terms.empty()) {
    return Status::InvalidArgument("cannot compile an empty clause");
  }
  RawClauseProgram prog;
  prog.terms_.reserve(clause.terms.size());
  for (const SimplePredicate& p : clause.terms) {
    CIAO_ASSIGN_OR_RETURN(RawPredicateProgram term,
                          RawPredicateProgram::Compile(p, kernel));
    prog.terms_.push_back(std::move(term));
  }
  return prog;
}

bool RawClauseProgram::Matches(std::string_view record) const {
  for (const RawPredicateProgram& term : terms_) {
    if (term.Matches(record)) return true;
  }
  return false;
}

std::vector<std::string> RawClauseProgram::PatternStrings() const {
  std::vector<std::string> out;
  for (const RawPredicateProgram& term : terms_) {
    for (std::string& s : term.PatternStrings()) out.push_back(std::move(s));
  }
  return out;
}

size_t RawClauseProgram::TotalPatternLength() const {
  size_t total = 0;
  for (const RawPredicateProgram& term : terms_) {
    total += term.TotalPatternLength();
  }
  return total;
}

}  // namespace ciao
