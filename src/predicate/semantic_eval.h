#ifndef CIAO_PREDICATE_SEMANTIC_EVAL_H_
#define CIAO_PREDICATE_SEMANTIC_EVAL_H_

#include "json/value.h"
#include "predicate/predicate.h"

namespace ciao {

/// Ground-truth predicate semantics over a parsed JSON record. This is
/// what the query engine uses to verify candidate tuples (the client-side
/// string matching may produce false positives, never false negatives),
/// and what correctness tests compare everything against.
///
/// Semantics:
///  - exact:    field is a string equal to the operand;
///  - substr:   field is a string containing the operand;
///  - present:  field exists and is not null;
///  - kv:       field equals the operand (numbers compare numerically,
///              int64 10 == double 10.0; bools and strings by value);
///  - range_lt: field is a number strictly less than the operand.
/// A missing field never satisfies any predicate.
bool EvaluateSimple(const SimplePredicate& p, const json::Value& record);

/// OR over the clause's terms.
bool EvaluateClause(const Clause& clause, const json::Value& record);

/// AND over the query's clauses.
bool EvaluateQuery(const Query& query, const json::Value& record);

}  // namespace ciao

#endif  // CIAO_PREDICATE_SEMANTIC_EVAL_H_
