#ifndef CIAO_PREDICATE_BATCHED_PROGRAM_H_
#define CIAO_PREDICATE_BATCHED_PROGRAM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "matcher/multi_pattern.h"
#include "predicate/pattern_compiler.h"

namespace ciao {

/// A set of pushed clauses compiled for batched evaluation: every term's
/// pattern strings (deduplicated) go into one MultiPatternMatcher, so one
/// scan of the raw record answers "which patterns occur where" for the
/// whole pushdown set; a pattern -> (clause, term, role) table then
/// reduces the hits back to per-clause booleans with semantics *identical*
/// to evaluating each RawClauseProgram independently (the differential
/// tests pin this).
///
/// Key-value terms keep their ordered `"key":`-then-value occurrence
/// check, but restructured for batching: the global matcher records the
/// *key* occurrences, and the value patterns of all terms sharing a
/// (key, value-length) pair form a private window matcher that scans just
/// the bytes between the key and the next delimiter — once per key
/// occurrence per record, regardless of how many values are pushed. The
/// short numeric value patterns therefore never pollute the global scan.
///
/// Immutable after Compile and self-contained (pattern bytes are copied
/// in), so one instance is safely shared by every client thread; per-scan
/// state lives in the caller's Scratch.
class BatchedClauseSet {
 public:
  /// Per-thread evaluation buffer.
  struct Scratch {
    MultiPatternHits hits;
    /// One byte per clause: 1 iff the clause matched the last record.
    std::vector<uint8_t> clause_matched;
    /// Lazy per-record window-group state (see WindowGroup).
    std::vector<uint8_t> group_computed;
    std::vector<MultiPatternHits> group_hits;
    std::vector<std::vector<uint64_t>> group_accum;
  };

  BatchedClauseSet() = default;

  /// Compiles the clause programs, in order; `clause_matched[i]`
  /// corresponds to `programs[i]`. The programs are only read during
  /// Compile (pattern strings and term kinds) — no pointers are retained.
  static BatchedClauseSet Compile(
      const std::vector<const RawClauseProgram*>& programs,
      const MultiPatternMatcher::Options& matcher_options = {});

  size_t num_clauses() const { return clauses_.size(); }
  const MultiPatternMatcher& matcher() const { return matcher_; }
  size_t num_window_groups() const { return groups_.size(); }

  Scratch MakeScratch() const;

  /// Scans `record` once and evaluates every clause into
  /// `scratch->clause_matched`.
  void EvaluateRecord(std::string_view record, Scratch* scratch) const;

 private:
  /// How a term reduces pattern hits to a boolean.
  enum class TermEval : uint8_t {
    kAlways,    // empty pattern: matches every record
    kPresence,  // primary pattern occurs anywhere
    kKeyValue,  // ordered key-then-value-in-window check
  };
  struct Term {
    TermEval eval = TermEval::kAlways;
    /// Global pattern id (the key pattern for kKeyValue).
    uint32_t primary = 0;
    uint32_t primary_len = 0;
    /// kKeyValue: which window group and which value bit inside it.
    uint32_t window_group = 0;
    uint32_t value_local = 0;
  };
  struct ClauseEntry {
    uint32_t term_start = 0;
    uint32_t term_end = 0;
  };
  /// All value patterns pushed against one (key pattern, value length)
  /// pair, compiled into a private matcher that scans only each key
  /// occurrence's bounded value window. The window end depends on the
  /// value length (the delimiter scan starts past room for the value, so
  /// a comma inside the matched value cannot truncate it) — hence the
  /// per-length grouping.
  struct WindowGroup {
    uint32_t key_uid = 0;
    uint32_t key_len = 0;
    uint32_t value_len = 0;
    MultiPatternMatcher values;
  };

  void ComputeWindowGroup(std::string_view record, uint32_t gid,
                          Scratch* scratch) const;

  std::vector<Term> terms_;
  std::vector<ClauseEntry> clauses_;
  std::vector<WindowGroup> groups_;
  MultiPatternMatcher matcher_;

  /// Most pushed clauses are single-term; they are pre-sorted into flat
  /// specialized lists so the per-record reduction is a tight loop of bit
  /// tests instead of a term-range walk with a switch. Clauses with
  /// several terms (or constant-true ones) stay on the general path.
  struct PresenceClause {
    uint32_t clause = 0;
    uint32_t pid = 0;
  };
  struct KvClause {
    uint32_t clause = 0;
    uint32_t key_pid = 0;
    uint32_t window_group = 0;
    uint32_t value_local = 0;
  };
  std::vector<PresenceClause> presence_clauses_;
  std::vector<KvClause> kv_clauses_;
  std::vector<uint32_t> always_clauses_;
  std::vector<uint32_t> general_clauses_;
};

}  // namespace ciao

#endif  // CIAO_PREDICATE_BATCHED_PROGRAM_H_
