#include "predicate/registry.h"

namespace ciao {

Result<uint32_t> PredicateRegistry::Register(const Clause& clause,
                                             double selectivity,
                                             double cost_us,
                                             SearchKernel kernel) {
  const std::string key = clause.CanonicalKey();
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;

  CIAO_ASSIGN_OR_RETURN(RawClauseProgram program,
                        RawClauseProgram::Compile(clause, kernel));
  RegisteredPredicate entry;
  entry.id = static_cast<uint32_t>(predicates_.size());
  entry.clause = clause;
  entry.pattern_strings = program.PatternStrings();
  entry.program = std::move(program);
  entry.selectivity = selectivity;
  entry.cost_us = cost_us;
  const uint32_t id = entry.id;
  predicates_.push_back(std::move(entry));
  by_key_.emplace(key, id);
  // Any previously finalized batched program no longer covers this
  // clause; drop it so stale copies cannot be handed out.
  batched_.reset();
  return id;
}

const RegisteredPredicate* PredicateRegistry::FindByKey(
    const std::string& canonical_key) const {
  const auto it = by_key_.find(canonical_key);
  if (it == by_key_.end()) return nullptr;
  return &predicates_[it->second];
}

std::vector<uint32_t> PredicateRegistry::PushedDownIds(
    const Query& query) const {
  std::vector<uint32_t> ids;
  for (const Clause& c : query.clauses) {
    const RegisteredPredicate* p = Find(c);
    if (p != nullptr) ids.push_back(p->id);
  }
  return ids;
}

void PredicateRegistry::FinalizeBatched() {
  std::vector<const RawClauseProgram*> programs;
  programs.reserve(predicates_.size());
  for (const RegisteredPredicate& p : predicates_) {
    programs.push_back(&p.program);
  }
  batched_ = std::make_shared<const BatchedClauseSet>(
      BatchedClauseSet::Compile(programs));
}

double PredicateRegistry::TotalCostUs() const {
  double total = 0.0;
  for (const RegisteredPredicate& p : predicates_) total += p.cost_us;
  return total;
}

}  // namespace ciao
