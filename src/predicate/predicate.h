#ifndef CIAO_PREDICATE_PREDICATE_H_
#define CIAO_PREDICATE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "json/value.h"

namespace ciao {

/// The predicate types CIAO can evaluate on raw JSON via string matching
/// (paper Table I), plus one deliberately unsupported kind (`kRangeLess`)
/// to exercise the "cannot push down" path: range/inequality predicates
/// would create false negatives and are rejected by the pattern compiler
/// (paper §IV-B).
enum class PredicateKind {
  kExactMatch,     // field = "Bob"            -> pattern "Bob" (quoted)
  kSubstringMatch, // field LIKE "%delicious%" -> pattern delicious
  kKeyPresence,    // field != NULL            -> pattern "field":
  kKeyValueMatch,  // field = 10               -> patterns "field": and 10
  kRangeLess,      // field < 10               -> NOT client-supported
};

std::string_view PredicateKindName(PredicateKind kind);

/// One atomic predicate over a single (possibly dotted-path nested) field.
struct SimplePredicate {
  PredicateKind kind = PredicateKind::kExactMatch;
  /// Field path, '.'-separated for nested objects ("address.city").
  std::string field;
  /// Comparison operand. String for exact/substring; string/int/bool for
  /// key-value; ignored (null) for key-presence; number for range.
  json::Value operand;

  /// Stable canonical key, e.g. `kv:age=10`; used for deduplication.
  std::string CanonicalKey() const;

  /// SQL-ish rendering for reports, e.g. `age = 10`.
  std::string ToSql() const;

  /// Factory helpers.
  static SimplePredicate Exact(std::string field, std::string value);
  static SimplePredicate Substring(std::string field, std::string needle);
  static SimplePredicate Presence(std::string field);
  static SimplePredicate KeyValue(std::string field, json::Value value);
  static SimplePredicate RangeLess(std::string field, json::Value bound);
};

/// A disjunction of simple predicates — the paper's pushdown unit ("each
/// clause is hereafter referred to as a predicate", §V-A). A clause with a
/// single term is a plain predicate; multiple terms model IN-lists /
/// OR-chains, which must be pushed down atomically.
struct Clause {
  std::vector<SimplePredicate> terms;

  /// Canonical key: term keys sorted and joined with " OR ". Two clauses
  /// with the same key are the same predicate for selection/skipping.
  std::string CanonicalKey() const;

  std::string ToSql() const;

  /// True iff every term can be evaluated client-side by string matching.
  bool SupportedOnClient() const;

  static Clause Of(SimplePredicate p);
  static Clause Or(std::vector<SimplePredicate> ps);
};

/// A workload query: `SELECT COUNT(*) FROM t WHERE c1 AND c2 AND ...`
/// (the paper's single query template, §VII-C), optionally extended with
/// projected columns whose values the executor must materialize for the
/// matching rows.
struct Query {
  std::vector<Clause> clauses;
  /// Relative execution frequency (the paper's experiments use uniform).
  double frequency = 1.0;
  /// Identifier for reports ("q0", "q1", ...).
  std::string name;
  /// Columns whose values are projected/aggregated over the matching rows
  /// (by schema field name; unknown names project NULL). Empty = the
  /// paper's plain COUNT(*). Projected columns participate in the column
  /// co-access profile the affinity miner clusters on, and the executor
  /// returns one order-independent value checksum per entry (see
  /// QueryResult::projected_hashes). Last so existing positional
  /// aggregate initializers (`Query{{c}, 1.0, "q0"}`) stay valid.
  std::vector<std::string> projected;

  std::string ToSql() const;
};

/// A query workload plus bookkeeping used by selection and the benches.
struct Workload {
  std::vector<Query> queries;

  /// Total number of clause occurrences across queries (Table III
  /// "#Predicates" column counts multiplicity).
  size_t TotalPredicateOccurrences() const;

  /// Minimum / maximum clauses per query (Table III "Min/Max").
  size_t MinPredicatesPerQuery() const;
  size_t MaxPredicatesPerQuery() const;

  /// Distinct clauses by canonical key, in first-appearance order.
  std::vector<Clause> DistinctClauses() const;

  /// For each distinct clause, the number of queries containing it —
  /// the X_i counts in the paper's skewness formula (§VII-E3).
  std::vector<double> ClauseQueryCounts() const;
};

}  // namespace ciao

#endif  // CIAO_PREDICATE_PREDICATE_H_
