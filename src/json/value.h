#ifndef CIAO_JSON_VALUE_H_
#define CIAO_JSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ciao::json {

class Value;

/// JSON object: ordered key/value pairs. Insertion order is preserved so
/// the writer emits records with a stable field layout — the client-side
/// pattern strings (e.g. `"key":`) rely on that canonical serialization.
using Object = std::vector<std::pair<std::string, Value>>;

/// JSON array.
using Array = std::vector<Value>;

/// Discriminates the active alternative of a Value.
enum class Type {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kArray,
  kObject,
};

/// A parsed JSON value (DOM node). Integers that fit int64 are kept exact
/// (distinct from doubles) so typed predicate evaluation on loaded data is
/// lossless.
class Value {
 public:
  /// Constructs null.
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int64_t i) : data_(i) {}                     // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : data_(d) {}                      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;

  Type type() const;

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; must match the active type.
  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  /// Numeric value as double regardless of int/double representation.
  double AsNumber() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object field lookup by key (linear scan; objects are small records).
  /// Returns nullptr when absent or when this is not an object.
  const Value* Find(std::string_view key) const;

  /// Nested lookup with '.'-separated path ("address.city"). Returns
  /// nullptr if any step is missing or not an object.
  const Value* FindPath(std::string_view dotted_path) const;

  /// Appends a field to an object value (no dedup; caller keeps keys unique).
  void Add(std::string key, Value v);

  /// Deep structural equality (int 2 != double 2.0 by design — the loader
  /// never mixes representations for one field).
  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

}  // namespace ciao::json

#endif  // CIAO_JSON_VALUE_H_
