#include "json/writer.h"

#include <cmath>
#include <cstdio>

namespace ciao::json {

namespace {

void AppendDouble(double d, std::string* out) {
  // %.17g round-trips the value; if the result looks like an integer
  // (no '.', 'e', inf/nan letters), append ".0" so re-parsing yields a
  // double again — the writer must preserve the int/double distinction.
  char buf[40];
  int len = std::snprintf(buf, sizeof(buf), "%.17g", d);
  bool integral = true;
  for (int i = 0; i < len; ++i) {
    const char c = buf[i];
    if (c == '.' || c == 'e' || c == 'E' || c == 'n' || c == 'i') {
      integral = false;
      break;
    }
  }
  if (integral) {
    buf[len++] = '.';
    buf[len++] = '0';
    buf[len] = '\0';
  }
  out->append(buf);
}

void AppendInt(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

}  // namespace

void EscapeStringTo(std::string_view s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void WriteTo(const Value& v, std::string* out) {
  switch (v.type()) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(v.as_bool() ? "true" : "false");
      break;
    case Type::kInt:
      AppendInt(v.as_int(), out);
      break;
    case Type::kDouble:
      AppendDouble(v.as_double(), out);
      break;
    case Type::kString:
      out->push_back('"');
      EscapeStringTo(v.as_string(), out);
      out->push_back('"');
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out->push_back(',');
        first = false;
        WriteTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        EscapeStringTo(key, out);
        out->append("\":");
        WriteTo(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Write(const Value& v) {
  std::string out;
  WriteTo(v, &out);
  return out;
}

}  // namespace ciao::json
