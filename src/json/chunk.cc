#include "json/chunk.h"

#include "json/writer.h"

namespace ciao::json {

void JsonChunk::Reserve(size_t records, size_t bytes) {
  data_.reserve(data_.size() + bytes);
  offsets_.reserve(offsets_.size() + records);
  lengths_.reserve(lengths_.size() + records);
}

void JsonChunk::AppendSerialized(std::string_view record) {
  offsets_.push_back(static_cast<uint32_t>(data_.size()));
  lengths_.push_back(static_cast<uint32_t>(record.size()));
  data_.append(record);
  data_.push_back('\n');
}

void JsonChunk::AppendValue(const Value& v) {
  offsets_.push_back(static_cast<uint32_t>(data_.size()));
  const size_t before = data_.size();
  WriteTo(v, &data_);
  lengths_.push_back(static_cast<uint32_t>(data_.size() - before));
  data_.push_back('\n');
}

std::string_view JsonChunk::Record(size_t i) const {
  return std::string_view(data_).substr(offsets_[i], lengths_[i]);
}

double JsonChunk::MeanRecordLength() const {
  if (offsets_.empty()) return 0.0;
  double total = 0.0;
  for (const uint32_t len : lengths_) total += len;
  return total / static_cast<double>(offsets_.size());
}

Result<JsonChunk> JsonChunk::FromNdjson(std::string buffer) {
  if (!buffer.empty() && buffer.back() != '\n') {
    return Status::Corruption("NDJSON buffer does not end with newline");
  }
  JsonChunk chunk;
  chunk.data_ = std::move(buffer);
  size_t start = 0;
  const std::string& data = chunk.data_;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] == '\n') {
      chunk.offsets_.push_back(static_cast<uint32_t>(start));
      chunk.lengths_.push_back(static_cast<uint32_t>(i - start));
      start = i + 1;
    }
  }
  return chunk;
}

std::vector<JsonChunk> SplitIntoChunks(const std::vector<std::string>& records,
                                       size_t chunk_size) {
  std::vector<JsonChunk> chunks;
  if (chunk_size == 0) chunk_size = 1;
  for (size_t i = 0; i < records.size(); i += chunk_size) {
    JsonChunk chunk;
    const size_t end = std::min(records.size(), i + chunk_size);
    for (size_t j = i; j < end; ++j) chunk.AppendSerialized(records[j]);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

}  // namespace ciao::json
