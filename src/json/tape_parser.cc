#include "json/tape_parser.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace ciao::json {

namespace {

/// Decodes four hex digits; the span was validated during scanning.
inline uint32_t Hex4(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const char c = p[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else {
      v |= static_cast<uint32_t>(c - 'A' + 10);
    }
  }
  return v;
}

template <typename Sink>
inline void EmitUtf8(uint32_t cp, Sink&& sink) {
  if (cp < 0x80) {
    sink(static_cast<char>(cp));
  } else if (cp < 0x800) {
    sink(static_cast<char>(0xC0 | (cp >> 6)));
    sink(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    sink(static_cast<char>(0xE0 | (cp >> 12)));
    sink(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    sink(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    sink(static_cast<char>(0xF0 | (cp >> 18)));
    sink(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    sink(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    sink(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Streams the decoded bytes of an escaped raw span into `sink`, one char
/// at a time. The span was fully validated by the scanner, so escapes and
/// surrogate pairs are well-formed here.
template <typename Sink>
void DecodeEscapedSpan(std::string_view raw, Sink&& sink) {
  size_t i = 0;
  while (i < raw.size()) {
    const char c = raw[i++];
    if (c != '\\') {
      sink(c);
      continue;
    }
    const char e = raw[i++];
    switch (e) {
      case '"':
        sink('"');
        break;
      case '\\':
        sink('\\');
        break;
      case '/':
        sink('/');
        break;
      case 'b':
        sink('\b');
        break;
      case 'f':
        sink('\f');
        break;
      case 'n':
        sink('\n');
        break;
      case 'r':
        sink('\r');
        break;
      case 't':
        sink('\t');
        break;
      default: {  // 'u'
        uint32_t cp = Hex4(raw.data() + i);
        i += 4;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          const uint32_t low = Hex4(raw.data() + i + 2);
          i += 6;  // skip "\uXXXX"
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        }
        EmitUtf8(cp, sink);
        break;
      }
    }
  }
}

/// The scanning core: the oracle parser's grammar and error conditions
/// (json/parser.cc) transliterated to emit tape tokens instead of
/// building a DOM. Any accept/reject divergence from the oracle is a bug
/// caught by the differential suite.
class Scanner {
 public:
  Scanner(std::string_view input, const ParseOptions& options,
          std::vector<TapeToken>* tokens, std::string* number_scratch)
      : input_(input),
        options_(options),
        tokens_(tokens),
        number_scratch_(number_scratch) {}

  Status ScanDocument(size_t* consumed, bool allow_trailing) {
    SkipWhitespace();
    CIAO_RETURN_IF_ERROR(ScanValue(0));
    SkipWhitespace();
    if (consumed != nullptr) *consumed = pos_;
    if (!allow_trailing && pos_ != input_.size()) {
      return Error("trailing characters after JSON value");
    }
    return Status::OK();
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = input_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Status Expect(char c) {
    if (AtEnd() || input_[pos_] != c) {
      return Status::InvalidArgument(StrFormat(
          "JSON parse error at offset %zu: expected '%c'", pos_, c));
    }
    ++pos_;
    return Status::OK();
  }

  void PushToken(TapeKind kind, size_t begin, size_t end) {
    TapeToken t;
    t.kind = kind;
    t.begin = static_cast<uint32_t>(begin);
    t.end = static_cast<uint32_t>(end);
    tokens_->push_back(t);
  }

  Status ScanValue(int depth) {
    if (depth > options_.max_depth) return Error("max nesting depth exceeded");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ScanObject(depth);
      case '[':
        return ScanArray(depth);
      case '"':
        return ScanString();
      case 't':
        return ScanLiteral("true", TapeKind::kBool, true);
      case 'f':
        return ScanLiteral("false", TapeKind::kBool, false);
      case 'n':
        return ScanLiteral("null", TapeKind::kNull, false);
      default:
        return ScanNumber();
    }
  }

  Status ScanLiteral(std::string_view literal, TapeKind kind,
                     bool bool_value) {
    if (input_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    PushToken(kind, pos_, pos_ + literal.size());
    tokens_->back().bool_value = bool_value;
    pos_ += literal.size();
    return Status::OK();
  }

  Status ScanObject(int depth) {
    CIAO_RETURN_IF_ERROR(Expect('{'));
    const size_t start_index = tokens_->size();
    PushToken(TapeKind::kObjectStart, pos_ - 1, pos_);
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return CloseContainer(start_index, TapeKind::kObjectEnd);
    }
    while (true) {
      SkipWhitespace();
      CIAO_RETURN_IF_ERROR(ScanString());
      SkipWhitespace();
      CIAO_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      CIAO_RETURN_IF_ERROR(ScanValue(depth + 1));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        break;
      }
      return Error("expected ',' or '}' in object");
    }
    return CloseContainer(start_index, TapeKind::kObjectEnd);
  }

  Status ScanArray(int depth) {
    CIAO_RETURN_IF_ERROR(Expect('['));
    const size_t start_index = tokens_->size();
    PushToken(TapeKind::kArrayStart, pos_ - 1, pos_);
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return CloseContainer(start_index, TapeKind::kArrayEnd);
    }
    while (true) {
      SkipWhitespace();
      CIAO_RETURN_IF_ERROR(ScanValue(depth + 1));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    return CloseContainer(start_index, TapeKind::kArrayEnd);
  }

  Status CloseContainer(size_t start_index, TapeKind end_kind) {
    PushToken(end_kind, pos_ - 1, pos_);
    (*tokens_)[start_index].extent =
        static_cast<uint32_t>(tokens_->size() - start_index);
    (*tokens_)[start_index].end = static_cast<uint32_t>(pos_);
    return Status::OK();
  }

  Status ValidateHex4(uint32_t* cp) {
    if (pos_ + 4 > input_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = input_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *cp = v;
    return Status::OK();
  }

  /// Validates one string and records its content span; nothing is
  /// decoded here — DecodedString does that lazily if ever asked.
  Status ScanString() {
    CIAO_RETURN_IF_ERROR(Expect('"'));
    const size_t content_start = pos_;
    bool has_escapes = false;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') continue;
      has_escapes = true;
      if (AtEnd()) return Error("dangling escape at end of string");
      const char e = input_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          break;
        case 'u': {
          uint32_t cp = 0;
          CIAO_RETURN_IF_ERROR(ValidateHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= input_.size() || input_[pos_] != '\\' ||
                input_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            CIAO_RETURN_IF_ERROR(ValidateHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    PushToken(TapeKind::kString, content_start, pos_ - 1);
    tokens_->back().has_escapes = has_escapes;
    return Status::OK();
  }

  Status ScanNumber() {
    const size_t start = pos_;
    bool is_double = false;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // The scratch string keeps its capacity across records, so steady
    // state pays a memcpy here, not an allocation. The conversion calls
    // are the oracle's exactly (int64 overflow falls back to double).
    number_scratch_->assign(input_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(number_scratch_->c_str(), &end, 10);
      if (errno == 0 && end == number_scratch_->c_str() + number_scratch_->size()) {
        PushToken(TapeKind::kInt, start, pos_);
        tokens_->back().i64 = static_cast<int64_t>(v);
        return Status::OK();
      }
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(number_scratch_->c_str(), &end);
    if (end != number_scratch_->c_str() + number_scratch_->size() ||
        !std::isfinite(d)) {
      return Error("number out of range");
    }
    PushToken(TapeKind::kDouble, start, pos_);
    tokens_->back().f64 = d;
    return Status::OK();
  }

  std::string_view input_;
  ParseOptions options_;
  std::vector<TapeToken>* tokens_;
  std::string* number_scratch_;
  size_t pos_ = 0;
};

}  // namespace

std::string_view Tape::DecodedString(const TapeToken& t,
                                     std::string* scratch) const {
  const std::string_view raw = Raw(t);
  if (!t.has_escapes) return raw;
  scratch->clear();
  DecodeEscapedSpan(raw, [scratch](char c) { scratch->push_back(c); });
  return *scratch;
}

bool Tape::StringEquals(const TapeToken& t, std::string_view expected) const {
  const std::string_view raw = Raw(t);
  if (!t.has_escapes) return raw == expected;
  size_t pos = 0;
  bool equal = true;
  DecodeEscapedSpan(raw, [&](char c) {
    if (equal && (pos >= expected.size() || expected[pos] != c)) {
      equal = false;
    }
    ++pos;
  });
  return equal && pos == expected.size();
}

size_t Tape::FindField(size_t obj_index, std::string_view key) const {
  if (obj_index >= tokens_.size()) return npos;
  const TapeToken& obj = tokens_[obj_index];
  if (obj.kind != TapeKind::kObjectStart) return npos;
  size_t i = obj_index + 1;
  const size_t end = obj_index + obj.extent - 1;  // index of kObjectEnd
  while (i < end) {
    const size_t value = i + 1;
    if (StringEquals(tokens_[i], key)) return value;
    i = value + tokens_[value].extent;
  }
  return npos;
}

size_t Tape::FindPath(std::string_view dotted_path) const {
  if (tokens_.empty()) return npos;
  size_t cur = 0;
  size_t start = 0;
  while (start <= dotted_path.size()) {
    const size_t dot = dotted_path.find('.', start);
    const std::string_view piece =
        dot == std::string_view::npos
            ? dotted_path.substr(start)
            : dotted_path.substr(start, dot - start);
    cur = FindField(cur, piece);
    if (cur == npos) return npos;
    if (dot == std::string_view::npos) return cur;
    start = dot + 1;
  }
  return npos;
}

namespace {

/// Token spans are uint32; reject inputs whose offsets would wrap rather
/// than silently truncating them.
Status CheckInputSize(std::string_view input) {
  if (input.size() > static_cast<size_t>(UINT32_MAX)) {
    return Status::InvalidArgument(
        "TapeParser: input exceeds 4 GiB token-span limit");
  }
  return Status::OK();
}

}  // namespace

Status TapeParser::Parse(std::string_view input, Tape* tape) {
  CIAO_RETURN_IF_ERROR(CheckInputSize(input));
  tape->input_ = input;
  tape->tokens_.clear();
  Scanner scanner(input, options_, &tape->tokens_, &number_scratch_);
  return scanner.ScanDocument(nullptr, options_.allow_trailing);
}

Status TapeParser::ParsePrefix(std::string_view input, Tape* tape,
                               size_t* consumed) {
  CIAO_RETURN_IF_ERROR(CheckInputSize(input));
  tape->input_ = input;
  tape->tokens_.clear();
  Scanner scanner(input, options_, &tape->tokens_, &number_scratch_);
  return scanner.ScanDocument(consumed, /*allow_trailing=*/true);
}

}  // namespace ciao::json
