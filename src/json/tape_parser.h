#ifndef CIAO_JSON_TAPE_PARSER_H_
#define CIAO_JSON_TAPE_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "json/parser.h"

namespace ciao::json {

/// Token kinds on the tape. Containers emit a start and an end token;
/// object contents are (key token, value tokens)* where the key is a
/// kString token.
enum class TapeKind : uint8_t {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kObjectStart,
  kObjectEnd,
  kArrayStart,
  kArrayEnd,
};

/// One tape entry. Strings are represented by their raw byte span in the
/// parsed input (quotes excluded, escapes undecoded) so the common
/// escape-free case costs nothing to extract; numbers carry their decoded
/// value inline.
struct TapeToken {
  TapeKind kind = TapeKind::kNull;
  /// kBool: the literal's value.
  bool bool_value = false;
  /// kString: the raw span contains at least one backslash escape and
  /// must be decoded before use.
  bool has_escapes = false;
  /// Raw byte span [begin, end) in the parsed input.
  uint32_t begin = 0;
  uint32_t end = 0;
  /// Token count of the subtree rooted at this token: 1 for scalars and
  /// keys, container size including both start and end tokens otherwise.
  /// `index + extent` is always the index one past the value — the
  /// constant-time skip that makes schema-driven field lookup cheap.
  uint32_t extent = 1;
  union {
    int64_t i64;  // kInt
    double f64;   // kDouble
  };
};

/// A parsed record as a flat token tape. The token vector and decode
/// scratch are owned by the Tape and reused across records (cleared, not
/// reallocated), so steady-state parsing does no heap allocation — the
/// per-record DOM churn of json::Parse is the cost this replaces
/// (paper §I: parsing is the loading bottleneck).
///
/// The tape refers into the parsed input buffer; the caller must keep
/// that buffer alive while reading the tape (JsonChunk already provides
/// exactly this lifetime).
class Tape {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }
  const TapeToken& token(size_t i) const { return tokens_[i]; }

  /// Raw input bytes of `t`'s span (string escapes NOT decoded).
  std::string_view Raw(const TapeToken& t) const {
    return input_.substr(t.begin, t.end - t.begin);
  }

  /// Decoded content of string token `t`. Returns the raw span directly
  /// when it has no escapes; otherwise decodes into `*scratch` (cleared
  /// first, capacity reused) and returns a view of it.
  std::string_view DecodedString(const TapeToken& t,
                                 std::string* scratch) const;

  /// True iff the decoded content of string token `t` equals `expected`.
  /// Never allocates, even for escaped strings.
  bool StringEquals(const TapeToken& t, std::string_view expected) const;

  /// Tape index of the value for `key` in the object starting at
  /// `obj_index`, or npos when absent (or not an object). First match
  /// wins on duplicate keys, mirroring Value::Find.
  size_t FindField(size_t obj_index, std::string_view key) const;

  /// Nested lookup from the root with a '.'-separated path, mirroring
  /// Value::FindPath exactly (a literal dotted key is never matched).
  size_t FindPath(std::string_view dotted_path) const;

 private:
  friend class TapeParser;

  std::string_view input_;
  std::vector<TapeToken> tokens_;
};

/// Single-pass tape parser. Accept/reject behavior is pinned to
/// json::Parse (same max-depth guard, string-escape and surrogate rules,
/// number grammar with exact int64 and double fallback, trailing-input
/// handling); the differential suite in tests/tape_parser_test.cc runs
/// both parsers over every corpus and malformed-input family. Unlike
/// json::Parse it materializes nothing: strings stay raw spans decoded
/// only on demand.
///
/// A TapeParser is cheap but stateful (it keeps a number-text scratch
/// buffer); use one per thread.
class TapeParser {
 public:
  explicit TapeParser(ParseOptions options = {}) : options_(options) {}

  /// Parses one document into `*tape` (cleared first, capacity reused).
  Status Parse(std::string_view input, Tape* tape);

  /// Like Parse but reports consumed bytes and ignores trailing input
  /// (the TapeParser analogue of json::ParsePrefix).
  Status ParsePrefix(std::string_view input, Tape* tape, size_t* consumed);

 private:
  ParseOptions options_;
  std::string number_scratch_;
};

}  // namespace ciao::json

#endif  // CIAO_JSON_TAPE_PARSER_H_
