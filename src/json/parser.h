#ifndef CIAO_JSON_PARSER_H_
#define CIAO_JSON_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "json/value.h"

namespace ciao::json {

/// Parser configuration.
struct ParseOptions {
  /// Maximum nesting depth of arrays/objects before the parser bails with
  /// InvalidArgument (stack-overflow guard on adversarial input).
  int max_depth = 64;
  /// When false, trailing non-whitespace after the top-level value is an
  /// error; when true it is ignored (used by incremental record scans).
  bool allow_trailing = false;
};

/// Parses one JSON document from `input`. Errors carry the byte offset of
/// the failure. This is the repository's rapidJSON substitute: a strict
/// recursive-descent parser with full string-escape and \uXXXX handling,
/// exact int64 integers, and double fallback.
Result<Value> Parse(std::string_view input, const ParseOptions& options = {});

/// Parses a document and reports how many input bytes it consumed
/// (`*consumed`), enabling scanning of concatenated documents.
Result<Value> ParsePrefix(std::string_view input, size_t* consumed,
                          const ParseOptions& options = {});

}  // namespace ciao::json

#endif  // CIAO_JSON_PARSER_H_
