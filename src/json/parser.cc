#include "json/parser.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace ciao::json {

namespace {

/// Recursive-descent parser over a string_view. No exceptions: every
/// production returns Status and writes into an out-parameter.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Status ParseDocument(Value* out, size_t* consumed) {
    SkipWhitespace();
    CIAO_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipWhitespace();
    if (consumed != nullptr) *consumed = pos_;
    if (!options_.allow_trailing && pos_ != input_.size()) {
      return Error("trailing characters after JSON value");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = input_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Status Expect(char c) {
    if (AtEnd() || input_[pos_] != c) {
      return Error(StrFormat("expected '%c'", c));
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > options_.max_depth) return Error("max nesting depth exceeded");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        CIAO_RETURN_IF_ERROR(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view literal, Value v, Value* out) {
    if (input_.substr(pos_, literal.size()) != literal) {
      return Error(StrFormat("invalid literal, expected '%.*s'",
                             static_cast<int>(literal.size()),
                             literal.data()));
    }
    pos_ += literal.size();
    *out = std::move(v);
    return Status::OK();
  }

  Status ParseObject(Value* out, int depth) {
    CIAO_RETURN_IF_ERROR(Expect('{'));
    Object obj;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = Value(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      CIAO_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      CIAO_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      Value v;
      CIAO_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      obj.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        break;
      }
      return Error("expected ',' or '}' in object");
    }
    *out = Value(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(Value* out, int depth) {
    CIAO_RETURN_IF_ERROR(Expect('['));
    Array arr;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = Value(std::move(arr));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      Value v;
      CIAO_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    *out = Value(std::move(arr));
    return Status::OK();
  }

  Status ParseHex4(uint32_t* cp) {
    if (pos_ + 4 > input_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = input_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *cp = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    CIAO_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("dangling escape at end of string");
      const char e = input_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          CIAO_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= input_.size() || input_[pos_] != '\\' ||
                input_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            CIAO_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    bool is_double = false;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string text(input_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == 0 && end == text.c_str() + text.size()) {
        *out = Value(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Integer overflow: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(d)) {
      return Error("number out of range");
    }
    *out = Value(d);
    return Status::OK();
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options);
  Value v;
  CIAO_RETURN_IF_ERROR(parser.ParseDocument(&v, nullptr));
  return v;
}

Result<Value> ParsePrefix(std::string_view input, size_t* consumed,
                          const ParseOptions& options) {
  ParseOptions opts = options;
  opts.allow_trailing = true;
  Parser parser(input, opts);
  Value v;
  CIAO_RETURN_IF_ERROR(parser.ParseDocument(&v, consumed));
  return v;
}

}  // namespace ciao::json
