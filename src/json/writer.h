#ifndef CIAO_JSON_WRITER_H_
#define CIAO_JSON_WRITER_H_

#include <string>

#include "json/value.h"

namespace ciao::json {

/// Serializes `v` as compact canonical JSON: no whitespace, `"key":value`
/// pairs in insertion order, minimal escaping, integers without exponent.
/// This is the byte layout the client-side pattern strings are compiled
/// against (DESIGN.md §5, "false positives allowed, false negatives never").
std::string Write(const Value& v);

/// Appends the compact serialization of `v` to `*out` (avoids temporary
/// strings in the record generators).
void WriteTo(const Value& v, std::string* out);

/// Escapes `s` as a JSON string *without* the surrounding quotes.
void EscapeStringTo(std::string_view s, std::string* out);

}  // namespace ciao::json

#endif  // CIAO_JSON_WRITER_H_
