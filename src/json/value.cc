#include "json/value.h"

namespace ciao::json {

Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kInt;
    case 3:
      return Type::kDouble;
    case 4:
      return Type::kString;
    case 5:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* Value::FindPath(std::string_view dotted_path) const {
  const Value* cur = this;
  size_t start = 0;
  while (start <= dotted_path.size()) {
    const size_t dot = dotted_path.find('.', start);
    const std::string_view piece =
        dot == std::string_view::npos
            ? dotted_path.substr(start)
            : dotted_path.substr(start, dot - start);
    cur = cur->Find(piece);
    if (cur == nullptr) return nullptr;
    if (dot == std::string_view::npos) return cur;
    start = dot + 1;
  }
  return nullptr;
}

void Value::Add(std::string key, Value v) {
  if (!is_object()) data_ = Object{};
  as_object().emplace_back(std::move(key), std::move(v));
}

}  // namespace ciao::json
