#ifndef CIAO_JSON_CHUNK_H_
#define CIAO_JSON_CHUNK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "json/value.h"

namespace ciao::json {

/// A batch of newline-delimited JSON records, the unit the paper's clients
/// ship to the server ("data clients send JSON objects in chunks", §III).
/// Records are stored back-to-back in one buffer with an offset index so
/// the client prefilter can scan raw bytes without any copies.
class JsonChunk {
 public:
  JsonChunk() = default;

  /// Pre-allocates for `records` records totalling `bytes` serialized
  /// bytes (including one '\n' per record), so a chunk assembled by a
  /// client session does exactly one buffer allocation.
  void Reserve(size_t records, size_t bytes);

  /// Appends one record given its serialized form (no trailing newline).
  void AppendSerialized(std::string_view record);

  /// Serializes `v` and appends it.
  void AppendValue(const Value& v);

  /// Number of records.
  size_t size() const { return offsets_.size(); }
  bool empty() const { return offsets_.empty(); }

  /// Raw bytes of record `i` (no newline).
  std::string_view Record(size_t i) const;

  /// The whole newline-delimited buffer (each record followed by '\n'),
  /// i.e. exactly what travels over the transport.
  const std::string& data() const { return data_; }

  /// Total serialized payload size in bytes.
  size_t ByteSize() const { return data_.size(); }

  /// Mean record length in bytes (the cost model's len(t)); 0 if empty.
  double MeanRecordLength() const;

  /// Rebuilds a chunk from a newline-delimited buffer (transport decode).
  /// Fails with Corruption if the buffer does not end with '\n' while
  /// non-empty.
  static Result<JsonChunk> FromNdjson(std::string buffer);

 private:
  std::string data_;
  // offsets_[i] = start of record i in data_; lengths_[i] excludes '\n'.
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> lengths_;
};

/// Splits a stream of records into chunks of `chunk_size` records.
std::vector<JsonChunk> SplitIntoChunks(const std::vector<std::string>& records,
                                       size_t chunk_size);

}  // namespace ciao::json

#endif  // CIAO_JSON_CHUNK_H_
