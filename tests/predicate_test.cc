#include <gtest/gtest.h>

#include "json/parser.h"
#include "json/writer.h"
#include "predicate/pattern_compiler.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"
#include "predicate/semantic_eval.h"

namespace ciao {
namespace {

// ---------- Model / canonical keys ----------

TEST(PredicateTest, CanonicalKeys) {
  EXPECT_EQ(SimplePredicate::Exact("name", "Bob").CanonicalKey(),
            "exact:name=\"Bob\"");
  EXPECT_EQ(SimplePredicate::Substring("text", "delicious").CanonicalKey(),
            "substr:text=\"delicious\"");
  EXPECT_EQ(SimplePredicate::Presence("email").CanonicalKey(),
            "present:email");
  EXPECT_EQ(SimplePredicate::KeyValue("age", int64_t{10}).CanonicalKey(),
            "kv:age=10");
}

TEST(PredicateTest, ClauseKeyIsOrderInvariant) {
  Clause a = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                         SimplePredicate::Exact("name", "John")});
  Clause b = Clause::Or({SimplePredicate::Exact("name", "John"),
                         SimplePredicate::Exact("name", "Bob")});
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  Clause c = Clause::Of(SimplePredicate::Exact("name", "Bob"));
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
}

TEST(PredicateTest, ToSqlRendering) {
  EXPECT_EQ(SimplePredicate::KeyValue("age", int64_t{10}).ToSql(), "age = 10");
  EXPECT_EQ(SimplePredicate::Substring("text", "delicious").ToSql(),
            "text LIKE \"%delicious%\"");
  EXPECT_EQ(SimplePredicate::Presence("email").ToSql(), "email != NULL");
  Clause in_list = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                               SimplePredicate::Exact("name", "John")});
  EXPECT_EQ(in_list.ToSql(), "(name = \"Bob\" OR name = \"John\")");
  Query q;
  q.clauses = {in_list, Clause::Of(SimplePredicate::KeyValue("age", 20))};
  EXPECT_EQ(q.ToSql(),
            "SELECT COUNT(*) FROM t WHERE (name = \"Bob\" OR name = "
            "\"John\") AND age = 20");
}

TEST(PredicateTest, SupportedOnClient) {
  EXPECT_TRUE(Clause::Of(SimplePredicate::Exact("a", "x")).SupportedOnClient());
  EXPECT_FALSE(Clause::Of(SimplePredicate::RangeLess("a", int64_t{5}))
                   .SupportedOnClient());
  // A disjunction with one unsupported term poisons the whole clause.
  EXPECT_FALSE(Clause::Or({SimplePredicate::Exact("a", "x"),
                           SimplePredicate::RangeLess("a", int64_t{5})})
                   .SupportedOnClient());
  EXPECT_FALSE(Clause{}.SupportedOnClient());
}

TEST(WorkloadTest, CountsAndDistinct) {
  Clause c1 = Clause::Of(SimplePredicate::KeyValue("a", int64_t{1}));
  Clause c2 = Clause::Of(SimplePredicate::KeyValue("b", int64_t{2}));
  Clause c3 = Clause::Of(SimplePredicate::KeyValue("c", int64_t{3}));
  Workload w;
  w.queries.push_back(Query{{c1, c2}, 1.0, "q0"});
  w.queries.push_back(Query{{c1}, 1.0, "q1"});
  w.queries.push_back(Query{{c1, c2, c3}, 1.0, "q2"});
  EXPECT_EQ(w.TotalPredicateOccurrences(), 6u);
  EXPECT_EQ(w.MinPredicatesPerQuery(), 1u);
  EXPECT_EQ(w.MaxPredicatesPerQuery(), 3u);
  EXPECT_EQ(w.DistinctClauses().size(), 3u);
  const auto counts = w.ClauseQueryCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 3.0);  // c1 in all three queries
  EXPECT_EQ(counts[1], 2.0);
  EXPECT_EQ(counts[2], 1.0);
}

// ---------- Pattern compilation (Table I) ----------

TEST(PatternCompilerTest, TableOnePatternStrings) {
  // Exact match: quoted operand.
  auto exact = RawPredicateProgram::Compile(
      SimplePredicate::Exact("name", "Bob"));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->PatternStrings(), std::vector<std::string>{"\"Bob\""});

  // Substring: bare needle.
  auto substr = RawPredicateProgram::Compile(
      SimplePredicate::Substring("text", "delicious"));
  ASSERT_TRUE(substr.ok());
  EXPECT_EQ(substr->PatternStrings(), std::vector<std::string>{"delicious"});

  // Key presence: `"key":`.
  auto present =
      RawPredicateProgram::Compile(SimplePredicate::Presence("email"));
  ASSERT_TRUE(present.ok());
  EXPECT_EQ(present->PatternStrings(),
            std::vector<std::string>{"\"email\":"});

  // Key-value: key pattern + serialized value.
  auto kv = RawPredicateProgram::Compile(
      SimplePredicate::KeyValue("age", int64_t{10}));
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->PatternStrings(),
            (std::vector<std::string>{"\"age\":", "10"}));
  EXPECT_EQ(kv->TotalPatternLength(), 8u);
}

TEST(PatternCompilerTest, RangeIsUnsupported) {
  auto r = RawPredicateProgram::Compile(
      SimplePredicate::RangeLess("age", int64_t{30}));
  EXPECT_TRUE(r.status().IsUnsupported());
  auto clause = RawClauseProgram::Compile(
      Clause::Or({SimplePredicate::Exact("a", "x"),
                  SimplePredicate::RangeLess("age", int64_t{30})}));
  EXPECT_FALSE(clause.ok());
}

TEST(PatternCompilerTest, EmptyClauseRejected) {
  EXPECT_TRUE(RawClauseProgram::Compile(Clause{}).status().IsInvalidArgument());
}

TEST(PatternCompilerTest, ExactMatchRequiresString) {
  EXPECT_TRUE(RawPredicateProgram::Compile(
                  SimplePredicate{PredicateKind::kExactMatch, "age",
                                  json::Value(int64_t{10})})
                  .status()
                  .IsInvalidArgument());
}

TEST(PatternCompilerTest, MatchBehaviour) {
  const std::string record =
      R"({"name":"Bob","age":22,"text":"really delicious food","email":null})";

  auto exact =
      RawPredicateProgram::Compile(SimplePredicate::Exact("name", "Bob"));
  EXPECT_TRUE(exact->Matches(record));
  auto exact_miss =
      RawPredicateProgram::Compile(SimplePredicate::Exact("name", "Alice"));
  EXPECT_FALSE(exact_miss->Matches(record));

  auto substr = RawPredicateProgram::Compile(
      SimplePredicate::Substring("text", "delicious"));
  EXPECT_TRUE(substr->Matches(record));

  // Presence matches even for null values (false positive by design; the
  // engine verifies).
  auto present =
      RawPredicateProgram::Compile(SimplePredicate::Presence("email"));
  EXPECT_TRUE(present->Matches(record));
  auto absent =
      RawPredicateProgram::Compile(SimplePredicate::Presence("phone"));
  EXPECT_FALSE(absent->Matches(record));

  auto kv =
      RawPredicateProgram::Compile(SimplePredicate::KeyValue("age", 22));
  EXPECT_TRUE(kv->Matches(record));
  auto kv_miss =
      RawPredicateProgram::Compile(SimplePredicate::KeyValue("age", 23));
  EXPECT_FALSE(kv_miss->Matches(record));
}

TEST(PatternCompilerTest, KeyValueFalsePositiveOnPrefixDigits) {
  // The paper allows false positives: "age":100 contains "10" in the
  // value window.
  const std::string record = R"({"age":100,"z":1})";
  auto kv = RawPredicateProgram::Compile(
      SimplePredicate::KeyValue("age", int64_t{10}));
  EXPECT_TRUE(kv->Matches(record));
}

TEST(PatternCompilerTest, KeyValueNoFalseNegativeOnKeySuffixCollision) {
  // "score": also occurs inside "linear_score":. The matcher must keep
  // searching past the first (wrong) key occurrence.
  const std::string record = R"({"linear_score":77,"score":42})";
  auto kv = RawPredicateProgram::Compile(
      SimplePredicate::KeyValue("score", int64_t{42}));
  EXPECT_TRUE(kv->Matches(record));
}

TEST(PatternCompilerTest, KeyValueValueWithCommaInside) {
  // Comma inside the matched string value must not truncate the window.
  SimplePredicate p =
      SimplePredicate::KeyValue("note", json::Value(std::string("a,b")));
  json::Value rec{json::Object{}};
  rec.Add("note", "a,b");
  rec.Add("after", int64_t{1});
  const std::string serialized = json::Write(rec);
  auto prog = RawPredicateProgram::Compile(p);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(EvaluateSimple(p, rec));
  EXPECT_TRUE(prog->Matches(serialized));
}

TEST(PatternCompilerTest, EscapedOperandsStillMatch) {
  // Substring operand containing JSON-escaped characters.
  SimplePredicate p =
      SimplePredicate::Substring("text", "line\nbreak \"quoted\"");
  json::Value rec{json::Object{}};
  rec.Add("text", "prefix line\nbreak \"quoted\" suffix");
  auto prog = RawPredicateProgram::Compile(p);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(EvaluateSimple(p, rec));
  EXPECT_TRUE(prog->Matches(json::Write(rec)));
}

TEST(PatternCompilerTest, NestedFieldUsesLeafKey) {
  auto prog = RawPredicateProgram::Compile(
      SimplePredicate::Substring("url.domain", "example.com"));
  ASSERT_TRUE(prog.ok());
  const std::string record =
      R"({"url":{"domain":"www.example.com","site":"home"}})";
  EXPECT_TRUE(prog->Matches(record));

  auto present =
      RawPredicateProgram::Compile(SimplePredicate::Presence("url.site"));
  EXPECT_EQ(present->PatternStrings(), std::vector<std::string>{"\"site\":"});
  EXPECT_TRUE(present->Matches(record));
}

TEST(PatternCompilerTest, DisjunctionMatchesAnyTerm) {
  Clause c = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                         SimplePredicate::Exact("name", "John")});
  auto prog = RawClauseProgram::Compile(c);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->Matches(R"({"name":"John"})"));
  EXPECT_TRUE(prog->Matches(R"({"name":"Bob"})"));
  EXPECT_FALSE(prog->Matches(R"({"name":"Alice"})"));
  EXPECT_EQ(prog->num_terms(), 2u);
  EXPECT_EQ(prog->TotalPatternLength(), 11u);  // "Bob" + "John" with quotes
}

// ---------- Semantic evaluation ----------

TEST(SemanticEvalTest, AllKinds) {
  auto rec = json::Parse(
      R"({"name":"Bob","age":22,"score":1.5,"ok":true,"text":"tasty food",)"
      R"("email":null,"nested":{"x":7}})");
  ASSERT_TRUE(rec.ok());

  EXPECT_TRUE(EvaluateSimple(SimplePredicate::Exact("name", "Bob"), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::Exact("name", "bob"), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::Exact("age", "22"), *rec));

  EXPECT_TRUE(EvaluateSimple(SimplePredicate::Substring("text", "tasty"), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::Substring("text", "salty"), *rec));

  EXPECT_TRUE(EvaluateSimple(SimplePredicate::Presence("name"), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::Presence("email"), *rec));  // null
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::Presence("missing"), *rec));
  EXPECT_TRUE(EvaluateSimple(SimplePredicate::Presence("nested.x"), *rec));

  EXPECT_TRUE(EvaluateSimple(SimplePredicate::KeyValue("age", 22), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::KeyValue("age", 23), *rec));
  EXPECT_TRUE(EvaluateSimple(SimplePredicate::KeyValue("ok", true), *rec));
  EXPECT_TRUE(EvaluateSimple(SimplePredicate::KeyValue("score", 1.5), *rec));
  EXPECT_TRUE(EvaluateSimple(SimplePredicate::KeyValue("nested.x", 7), *rec));

  // Mixed numeric representations compare numerically.
  EXPECT_TRUE(
      EvaluateSimple(SimplePredicate::KeyValue("score", 1.5), *rec));
  auto rec2 = json::Parse(R"({"v":10})");
  EXPECT_TRUE(EvaluateSimple(SimplePredicate::KeyValue("v", 10.0), *rec2));

  EXPECT_TRUE(EvaluateSimple(SimplePredicate::RangeLess("age", 30), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::RangeLess("age", 22), *rec));
  EXPECT_FALSE(EvaluateSimple(SimplePredicate::RangeLess("name", 30), *rec));
}

TEST(SemanticEvalTest, ClauseAndQuery) {
  auto rec = json::Parse(R"({"name":"Bob","age":20})");
  Clause name_in = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                               SimplePredicate::Exact("name", "John")});
  Clause age_is = Clause::Of(SimplePredicate::KeyValue("age", 20));
  EXPECT_TRUE(EvaluateClause(name_in, *rec));

  Query q;
  q.clauses = {name_in, age_is};
  EXPECT_TRUE(EvaluateQuery(q, *rec));
  q.clauses.push_back(Clause::Of(SimplePredicate::KeyValue("age", 21)));
  EXPECT_FALSE(EvaluateQuery(q, *rec));
}

// ---------- Registry ----------

TEST(RegistryTest, RegisterAndLookup) {
  PredicateRegistry registry;
  Clause c1 = Clause::Of(SimplePredicate::Exact("name", "Bob"));
  Clause c2 = Clause::Of(SimplePredicate::KeyValue("age", 10));
  auto id1 = registry.Register(c1, 0.1, 0.5);
  auto id2 = registry.Register(c2, 0.2, 0.7);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, 0u);
  EXPECT_EQ(*id2, 1u);
  EXPECT_EQ(registry.size(), 2u);

  // Duplicate registration returns the existing id.
  auto dup = registry.Register(c1, 0.9, 9.9);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(*dup, 0u);
  EXPECT_EQ(registry.size(), 2u);

  const RegisteredPredicate* found = registry.Find(c2);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, 1u);
  EXPECT_DOUBLE_EQ(found->selectivity, 0.2);
  EXPECT_EQ(registry.FindByKey("nonexistent"), nullptr);
  EXPECT_NEAR(registry.TotalCostUs(), 1.2, 1e-12);
}

TEST(RegistryTest, PushedDownIdsForQuery) {
  PredicateRegistry registry;
  Clause c1 = Clause::Of(SimplePredicate::Exact("name", "Bob"));
  Clause c2 = Clause::Of(SimplePredicate::KeyValue("age", 10));
  Clause c3 = Clause::Of(SimplePredicate::KeyValue("age", 11));
  ASSERT_TRUE(registry.Register(c1, 0.1, 0.5).ok());
  ASSERT_TRUE(registry.Register(c2, 0.2, 0.7).ok());

  Query q;
  q.clauses = {c1, c3};  // c3 not pushed down
  const auto ids = registry.PushedDownIds(q);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 0u);
}

TEST(RegistryTest, UnsupportedClauseFailsRegistration) {
  PredicateRegistry registry;
  EXPECT_FALSE(
      registry.Register(Clause::Of(SimplePredicate::RangeLess("a", 5)), 0.1, 1)
          .ok());
}

}  // namespace
}  // namespace ciao
