// Crash-recovery fault injection at the system level: a live storage
// directory is snapshotted (= the file state a kill would leave), then
// the WAL and segment files are truncated at prefix boundaries and the
// system is re-bootstrapped on the damaged image. Invariants:
//   1. Every acknowledged batch whose WAL frame is intact on the image
//      survives — query results are byte-identical (counts + projected
//      hashes) to an all-in-RAM system fed exactly those batches.
//   2. A torn segment file never corrupts results: pre-checkpoint spills
//      are orphans (rebuilt from the WAL); checkpointed files are CRC
//      verified at map time, so damage surfaces as Corruption, never as
//      silently wrong counts.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/system.h"
#include "storage/fs.h"
#include "storage/wal.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

namespace ciao {
namespace {

namespace stdfs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = (stdfs::temp_directory_path() / name).string();
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  return dir;
}

void CopyDir(const std::string& from, const std::string& to) {
  stdfs::remove_all(to);
  stdfs::copy(from, to, stdfs::copy_options::recursive);
}

void TruncateFile(const std::string& path, size_t len) {
  std::string bytes;
  ASSERT_TRUE(fs::ReadFile(path, &bytes).ok());
  ASSERT_LE(len, bytes.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(len));
}

using QuerySignature = std::vector<std::pair<uint64_t, std::vector<uint64_t>>>;

struct Fixture {
  workload::Dataset ds;
  Workload wl;
  CiaoConfig base_config;
  std::vector<std::vector<std::string>> batches;

  Fixture() {
    workload::GeneratorOptions gen;
    gen.num_records = 200;
    gen.seed = 13;
    ds = workload::GenerateDataset(workload::DatasetKind::kYcsb, gen);
    const auto pool =
        workload::TemplatesFor(workload::DatasetKind::kYcsb).AllCandidates();
    workload::WorkloadSpec spec;
    spec.num_queries = 8;
    spec.distribution = workload::PredicateDistribution::kZipfian;
    spec.zipf_s = 1.5;
    spec.seed = 3;
    wl = workload::GenerateWorkload(pool, spec);
    base_config.budget_us = 80.0;
    base_config.chunk_size = 32;
    base_config.sample_size = 150;
    constexpr size_t kBatch = 20;
    for (size_t i = 0; i < ds.records.size(); i += kBatch) {
      batches.emplace_back(
          ds.records.begin() + i,
          ds.records.begin() + std::min(i + kBatch, ds.records.size()));
    }
  }

  Result<std::unique_ptr<CiaoSystem>> Boot(const std::string& storage_dir,
                                           bool storage = true) const {
    CiaoConfig config = base_config;
    config.storage.enabled = storage;
    config.storage.dir = storage_dir;
    return CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                 CostModel::Default());
  }

  QuerySignature Run(CiaoSystem* system) const {
    QuerySignature out;
    for (const Query& q : wl.queries) {
      auto r = system->ExecuteQuery(q);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) out.emplace_back(r->count, r->projected_hashes);
    }
    return out;
  }

  /// Reference signature: an all-in-RAM system fed the first `n` batches.
  QuerySignature Reference(size_t n) const {
    auto system = Boot(/*storage_dir=*/"", /*storage=*/false);
    EXPECT_TRUE(system.ok()) << system.status().ToString();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE((*system)->IngestRecords(batches[i]).ok());
    }
    return Run(system->get());
  }
};

/// Parses the WAL's frame end offsets (magic|len|crc|payload per frame).
std::vector<size_t> FrameEnds(const std::string& wal_bytes) {
  std::vector<size_t> ends;
  size_t off = 0;
  while (off + 12 <= wal_bytes.size()) {
    uint32_t len = 0;
    std::memcpy(&len, wal_bytes.data() + off + 4, 4);
    off += 12 + len;
    if (off > wal_bytes.size()) break;
    ends.push_back(off);
  }
  return ends;
}

TEST(WalRecoveryFaultInjectionTest, EveryWalTruncationKeepsAckedBatches) {
  const Fixture fixture;
  const std::string live_dir = TempDir("ciao_fi_live");
  const std::string image_dir =
      (stdfs::temp_directory_path() / "ciao_fi_image").string();

  // Live system: ingest every batch, snapshot the dir mid-flight (the
  // crash image — the destructor's clean-shutdown checkpoint must never
  // touch it).
  {
    auto system = fixture.Boot(live_dir);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    for (const auto& batch : fixture.batches) {
      ASSERT_TRUE((*system)->IngestRecords(batch).ok());
    }
    CopyDir(live_dir, image_dir);
  }

  std::string wal_bytes;
  ASSERT_TRUE(fs::ReadFile(image_dir + "/wal.log", &wal_bytes).ok());
  const std::vector<size_t> ends = FrameEnds(wal_bytes);
  ASSERT_EQ(ends.size(), fixture.batches.size())
      << "every ingest batch must have exactly one intact WAL frame in "
         "the crash image";

  // References for every possible surviving prefix, computed once.
  std::vector<QuerySignature> reference;
  reference.reserve(ends.size() + 1);
  for (size_t n = 0; n <= ends.size(); ++n) {
    reference.push_back(fixture.Reference(n));
  }

  // Truncation points: every frame boundary, every boundary +/- 1 (torn
  // tail one byte into / short of a frame), each frame's midpoint, and 0.
  std::vector<size_t> cuts = {0, 1};
  size_t prev = 0;
  for (const size_t end : ends) {
    cuts.push_back(prev + (end - prev) / 2);
    if (end > 0) cuts.push_back(end - 1);
    cuts.push_back(end);
    if (end + 1 <= wal_bytes.size()) cuts.push_back(end + 1);
    prev = end;
  }
  for (const size_t cut : cuts) {
    const std::string dir =
        (stdfs::temp_directory_path() / "ciao_fi_cut").string();
    CopyDir(image_dir, dir);
    TruncateFile(dir + "/wal.log", cut);
    auto recovered = fixture.Boot(dir);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.status().ToString();
    size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= cut) ++complete;
    EXPECT_EQ(fixture.Run(recovered->get()), reference[complete])
        << "cut=" << cut << " (" << complete << " surviving batches)";
    recovered->reset();  // checkpoint before the dir disappears
    stdfs::remove_all(dir);
  }
  stdfs::remove_all(live_dir);
  stdfs::remove_all(image_dir);
}

TEST(WalRecoveryFaultInjectionTest, TornPreCheckpointSegmentFilesAreRebuilt) {
  const Fixture fixture;
  const std::string live_dir = TempDir("ciao_fi_seg_live");
  const std::string image_dir =
      (stdfs::temp_directory_path() / "ciao_fi_seg_image").string();
  {
    auto system = fixture.Boot(live_dir);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    for (const auto& batch : fixture.batches) {
      ASSERT_TRUE((*system)->IngestRecords(batch).ok());
    }
    CopyDir(live_dir, image_dir);
  }
  const QuerySignature expected = fixture.Reference(fixture.batches.size());

  // Pre-checkpoint spills are unsynced: a kill can leave them torn at any
  // length. Recovery must never read them (orphan GC) — the WAL rebuilds
  // every row. Sweep prefix boundaries of every segment file.
  std::vector<std::string> seg_files;
  for (const auto& entry : stdfs::directory_iterator(image_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg_", 0) == 0) seg_files.push_back(name);
  }
  ASSERT_FALSE(seg_files.empty()) << "ingest must have spilled segments";

  for (const std::string& name : seg_files) {
    const size_t size = stdfs::file_size(image_dir + "/" + name);
    // Every prefix boundary for small files; stride for bigger ones so
    // the sweep stays tractable (boundaries 0, 1, and size-1 always in).
    const size_t stride = size <= 64 ? 1 : size / 37;
    std::vector<size_t> cuts = {0, 1, size - 1};
    for (size_t cut = stride; cut < size; cut += stride) cuts.push_back(cut);
    for (const size_t cut : cuts) {
      const std::string dir =
          (stdfs::temp_directory_path() / "ciao_fi_seg_cut").string();
      CopyDir(image_dir, dir);
      TruncateFile(dir + "/" + name, cut);
      auto recovered = fixture.Boot(dir);
      ASSERT_TRUE(recovered.ok()) << name << " cut=" << cut << ": "
                                  << recovered.status().ToString();
      EXPECT_EQ(fixture.Run(recovered->get()), expected)
          << name << " cut=" << cut;
      recovered->reset();
      stdfs::remove_all(dir);
    }
  }
  stdfs::remove_all(live_dir);
  stdfs::remove_all(image_dir);
}

TEST(WalRecoveryFaultInjectionTest,
     DamagedCheckpointedSegmentIsDetectedNeverSilentlyWrong) {
  const Fixture fixture;
  const std::string live_dir = TempDir("ciao_fi_rot_live");
  const std::string image_dir =
      (stdfs::temp_directory_path() / "ciao_fi_rot_image").string();
  {
    auto system = fixture.Boot(live_dir);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    for (const auto& batch : fixture.batches) {
      ASSERT_TRUE((*system)->IngestRecords(batch).ok());
    }
    // Clean shutdown: everything checkpointed, WAL empty.
  }
  CopyDir(live_dir, image_dir);
  const QuerySignature expected = fixture.Reference(fixture.batches.size());

  std::vector<std::string> seg_files;
  for (const auto& entry : stdfs::directory_iterator(image_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg_", 0) == 0) seg_files.push_back(name);
  }
  ASSERT_FALSE(seg_files.empty());

  // Checkpointed (manifest-listed) files have no WAL cover anymore: bit
  // rot cannot be *repaired*, but it must be *detected*. For a sample of
  // truncation lengths, either bootstrap fails or the damaged segment's
  // queries fail with Corruption; any query that does succeed must still
  // be byte-identical to the reference.
  const std::string& victim = seg_files.front();
  const size_t size = stdfs::file_size(image_dir + "/" + victim);
  for (const size_t cut : {size_t{0}, size_t{1}, size / 2, size - 1}) {
    const std::string dir =
        (stdfs::temp_directory_path() / "ciao_fi_rot_cut").string();
    CopyDir(image_dir, dir);
    TruncateFile(dir + "/" + victim, cut);
    auto recovered = fixture.Boot(dir);
    if (!recovered.ok()) {
      stdfs::remove_all(dir);
      continue;  // detected at open — acceptable
    }
    bool any_corruption = false;
    for (size_t i = 0; i < fixture.wl.queries.size(); ++i) {
      auto r = (*recovered)->ExecuteQuery(fixture.wl.queries[i]);
      if (!r.ok()) {
        any_corruption = true;
        EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
      } else {
        EXPECT_EQ(r->count, expected[i].first) << victim << " cut=" << cut;
        EXPECT_EQ(r->projected_hashes, expected[i].second);
      }
    }
    EXPECT_TRUE(any_corruption)
        << victim << " cut=" << cut
        << ": damage neither failed bootstrap nor any query";
    recovered->reset();
    stdfs::remove_all(dir);
  }
  stdfs::remove_all(live_dir);
  stdfs::remove_all(image_dir);
}

}  // namespace
}  // namespace ciao
