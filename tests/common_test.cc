#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/crc32.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace ciao {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IOError("disk gone").WithContext("loading chunk 3");
  EXPECT_EQ(s.message(), "loading chunk 3: disk gone");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_TRUE(Status().WithContext("ignored").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CIAO_ASSIGN_OR_RETURN(int h, Half(x));
  CIAO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GeometricCapped) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextGeometric(0.5, 10);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 10);
  }
  EXPECT_EQ(rng.NextGeometric(1.0, 10), 0);
  EXPECT_EQ(rng.NextGeometric(0.0, 10), 10);
}

TEST(RngTest, IdentifierAlphabet) {
  Rng rng(23);
  const std::string id = rng.NextIdentifier(32);
  EXPECT_EQ(id.size(), 32u);
  for (char c : id) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(50, 1.5);
  double sum = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    sum += zipf.Pmf(i);
    if (i > 0) EXPECT_LE(zipf.Pmf(i), zipf.Pmf(i - 1));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (size_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-12);
}

TEST(HashMixTest, DeterministicAndSpread) {
  EXPECT_EQ(HashMix64(42), HashMix64(42));
  EXPECT_NE(HashMix64(42), HashMix64(43));
}

// ---------- Stats ----------

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(StatsTest, SkewnessZeroForUniformCounts) {
  EXPECT_EQ(SkewnessFactor({1, 1, 1, 1}), 0.0);
  EXPECT_EQ(SkewnessFactor({5}), 0.0);
}

TEST(StatsTest, SkewnessMatchesPaperFormulaByHand) {
  // X = [5,1,1,1,1,1]: mean 10/6, sigma via /N, denominator (N-1)*sigma^3.
  const std::vector<double> xs = {5, 1, 1, 1, 1, 1};
  const double mean = 10.0 / 6.0;
  double sigma2 = 0.0, cube = 0.0;
  for (double x : xs) {
    sigma2 += (x - mean) * (x - mean);
    cube += std::pow(x - mean, 3);
  }
  sigma2 /= 6.0;
  const double expected = cube / (5.0 * std::pow(std::sqrt(sigma2), 3));
  EXPECT_NEAR(SkewnessFactor(xs), expected, 1e-12);
  EXPECT_NEAR(SkewnessFactor(xs), 2.14, 0.01);
}

TEST(StatsTest, SkewnessSign) {
  EXPECT_GT(SkewnessFactor({10, 1, 1, 1, 1}), 0.0);   // right-skewed
  EXPECT_LT(SkewnessFactor({10, 10, 10, 10, 1}), 0.0);  // left-skewed
}

TEST(StatsTest, RSquaredPerfectAndPoor) {
  std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RSquared(y, y), 1.0);
  std::vector<double> mean_pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(RSquared(y, mean_pred), 0.0, 1e-12);
}

TEST(StatsTest, RSquaredDegenerateCases) {
  EXPECT_EQ(RSquared({}, {}), 0.0);
  EXPECT_EQ(RSquared({1, 2}, {1}), 0.0);
  EXPECT_EQ(RSquared({3, 3, 3}, {3, 3, 3}), 1.0);  // constant, perfect
  EXPECT_EQ(RSquared({3, 3, 3}, {3, 3, 4}), 0.0);  // constant, imperfect
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  std::vector<double> xs = {3.5, -1.0, 7.25, 0.0, 2.5};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_EQ(rs.min(), -1.0);
  EXPECT_EQ(rs.max(), 7.25);
  EXPECT_NEAR(rs.sum(), 12.25, 1e-12);
}

// ---------- Matrix / least squares ----------

TEST(MatrixTest, SolveLinearSystem) {
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 3;
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(MatrixTest, SingularMatrixFails) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  EXPECT_TRUE(SolveLinearSystem(a, {1, 2}).status().IsInternal());
}

TEST(MatrixTest, ShapeMismatchFails) {
  Matrix a(2, 3);
  EXPECT_TRUE(SolveLinearSystem(a, {1, 2}).status().IsInvalidArgument());
}

TEST(MatrixTest, LeastSquaresRecoversCoefficients) {
  // y = 3*x0 - 2*x1 + 0.5, exactly.
  Rng rng(41);
  Matrix x(50, 3);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    const double x0 = rng.NextDouble() * 10;
    const double x1 = rng.NextDouble() * 5;
    x.At(i, 0) = x0;
    x.At(i, 1) = x1;
    x.At(i, 2) = 1.0;
    y[i] = 3 * x0 - 2 * x1 + 0.5;
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-6);
  EXPECT_NEAR((*beta)[1], -2.0, 1e-6);
  EXPECT_NEAR((*beta)[2], 0.5, 1e-6);
}

TEST(MatrixTest, LeastSquaresUnderdeterminedFails) {
  Matrix x(2, 3);
  EXPECT_FALSE(LeastSquares(x, {1, 2}).ok());
}

// ---------- CRC32 ----------

TEST(Crc32Test, KnownVector) {
  // The canonical IEEE test vector.
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, SeedChaining) {
  const std::string a = "hello ", b = "world";
  const uint32_t whole = Crc32(a + b);
  const uint32_t chained = Crc32(b.data(), b.size(), Crc32(a));
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const uint32_t before = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(before, Crc32(data));
}

// ---------- string_util ----------

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinAndContains) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(Contains("hello world", "lo wo"));
  EXPECT_FALSE(Contains("hello", "world"));
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(ZeroPad2(3), "03");
  EXPECT_EQ(ZeroPad2(42), "42");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(10), "10.0 B");
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

// ---------- Timer ----------

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(w.ElapsedNanos(), 0u);
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double total = 0.0;
  {
    ScopedTimer t(&total);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  const double after_first = total;
  EXPECT_GT(after_first, 0.0);
  {
    ScopedTimer t(&total);
  }
  EXPECT_GE(total, after_first);
}

}  // namespace
}  // namespace ciao
