#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <set>

#include "common/stats.h"
#include "columnar/json_converter.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "workload/dataset.h"
#include "workload/history.h"
#include "workload/micro_workloads.h"
#include "workload/query_gen.h"
#include "workload/selectivity.h"
#include "workload/templates.h"

namespace ciao::workload {
namespace {

// ---------- Generators ----------

class GeneratorTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorTest, DeterministicUnderSeed) {
  GeneratorOptions opt;
  opt.num_records = 50;
  opt.seed = 99;
  const Dataset a = GenerateDataset(GetParam(), opt);
  const Dataset b = GenerateDataset(GetParam(), opt);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]);
  }
  opt.seed = 100;
  const Dataset c = GenerateDataset(GetParam(), opt);
  EXPECT_NE(a.records[0], c.records[0]);
}

TEST_P(GeneratorTest, RecordsParseAndConformToSchema) {
  GeneratorOptions opt;
  opt.num_records = 200;
  const Dataset ds = GenerateDataset(GetParam(), opt);
  EXPECT_EQ(ds.records.size(), 200u);
  EXPECT_GT(ds.MeanRecordLength(), 20.0);
  EXPECT_GT(ds.TotalBytes(), 0u);

  columnar::BatchBuilder builder(ds.schema);
  for (const std::string& r : ds.records) {
    ASSERT_TRUE(builder.AppendSerialized(r).ok()) << r;
  }
  // Generators never emit schema-violating values.
  EXPECT_EQ(builder.coercion_errors(), 0u);
  EXPECT_EQ(builder.Finish().num_rows(), 200u);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorTest,
                         ::testing::Values(DatasetKind::kYelp,
                                           DatasetKind::kWinLog,
                                           DatasetKind::kYcsb),
                         [](const auto& info) {
                           return std::string(DatasetKindName(info.param));
                         });

TEST(GeneratorTest, YelpFieldDistributions) {
  const Dataset ds = GenerateYelp({2000, 5});
  size_t stars5 = 0, has_delicious = 0;
  for (const std::string& r : ds.records) {
    auto v = json::Parse(r);
    ASSERT_TRUE(v.ok());
    const int64_t stars = v->Find("stars")->as_int();
    ASSERT_GE(stars, 1);
    ASSERT_LE(stars, 5);
    if (stars == 5) ++stars5;
    if (v->Find("text")->as_string().find("delicious") != std::string::npos) {
      ++has_delicious;
    }
    const std::string& date = v->Find("date")->as_string();
    ASSERT_EQ(date.size(), 10u);
    ASSERT_GE(date.substr(0, 4), "2004");
    ASSERT_LE(date.substr(0, 4), "2017");
  }
  EXPECT_NEAR(stars5 / 2000.0, 0.35, 0.05);
  EXPECT_NEAR(has_delicious / 2000.0, 0.20, 0.04);
}

TEST(GeneratorTest, WinLogMicroMarkerFrequencies) {
  const Dataset ds = GenerateWinLog({4000, 5});
  // Tier tokens appear independently with the tier probability.
  size_t hits35 = 0, hits01 = 0;
  for (const std::string& r : ds.records) {
    if (r.find("mk035_0") != std::string::npos) ++hits35;
    if (r.find("mk001_0") != std::string::npos) ++hits01;
  }
  EXPECT_NEAR(hits35 / 4000.0, 0.35, 0.03);
  EXPECT_NEAR(hits01 / 4000.0, 0.01, 0.006);
}

TEST(GeneratorTest, YcsbNullableEmailAndNestedFields) {
  const Dataset ds = GenerateYcsb({1000, 5});
  size_t null_email = 0;
  for (const std::string& r : ds.records) {
    auto v = json::Parse(r);
    ASSERT_TRUE(v.ok());
    const json::Value* email = v->Find("email");
    ASSERT_NE(email, nullptr);
    if (email->is_null()) ++null_email;
    ASSERT_NE(v->FindPath("url.domain"), nullptr);
    ASSERT_NE(v->FindPath("name.first"), nullptr);
    ASSERT_NE(v->FindPath("address.city"), nullptr);
  }
  EXPECT_NEAR(null_email / 1000.0, 0.10, 0.04);
}

// ---------- Templates (Table II) ----------

TEST(TemplateTest, TableTwoCandidateCounts) {
  const TemplatePool yelp = TemplatesFor(DatasetKind::kYelp);
  ASSERT_EQ(yelp.templates.size(), 8u);  // Table II: 8 Yelp templates
  EXPECT_EQ(yelp.templates[0].num_candidates, 100u);  // useful
  EXPECT_EQ(yelp.templates[3].num_candidates, 5u);    // stars
  EXPECT_EQ(yelp.templates[4].num_candidates, 5u);    // user_id
  EXPECT_EQ(yelp.templates[5].num_candidates, 5u);    // text LIKE
  EXPECT_EQ(yelp.templates[6].num_candidates, 14u);   // year
  EXPECT_EQ(yelp.templates[7].num_candidates, 12u);   // month
  EXPECT_EQ(yelp.TotalCandidates(), 341u);

  const TemplatePool winlog = TemplatesFor(DatasetKind::kWinLog);
  ASSERT_EQ(winlog.templates.size(), 6u);  // Table II: 6 WinLog templates
  EXPECT_EQ(winlog.templates[0].num_candidates, 200u);  // info LIKE

  const TemplatePool ycsb = TemplatesFor(DatasetKind::kYcsb);
  ASSERT_EQ(ycsb.templates.size(), 9u);  // Table II: 9 YCSB templates
  EXPECT_EQ(ycsb.templates[0].num_candidates, 2u);    // isActive
  EXPECT_EQ(ycsb.templates[6].num_candidates, 12u);   // url_domain
  EXPECT_EQ(ycsb.templates[7].num_candidates, 14u);   // url_site
  EXPECT_EQ(ycsb.templates[8].num_candidates, 2u);    // email
}

TEST(TemplateTest, CandidatesAreDistinctAndSupported) {
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    const auto pool = TemplatesFor(kind).AllCandidates();
    std::set<std::string> keys;
    for (const Clause& c : pool) {
      EXPECT_TRUE(c.SupportedOnClient());
      keys.insert(c.CanonicalKey());
    }
    EXPECT_EQ(keys.size(), pool.size()) << DatasetKindName(kind);
  }
}

TEST(TemplateTest, CandidateSelectivitiesMatchGeneratorDistributions) {
  const Dataset ds = GenerateYcsb({3000, 11});
  const auto pool = TemplatesFor(DatasetKind::kYcsb);
  // age_group = "adult" (template 4, candidate 2) has pmf 0.5.
  const Clause adult = pool.templates[4].instantiate(2);
  auto est = EstimateClauseStats(ds.records, {adult}, 3000, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->clause_stats[0].selectivity, 0.5, 0.05);

  // isActive = true: pmf 0.5.
  const Clause active = pool.templates[0].instantiate(0);
  auto est2 = EstimateClauseStats(ds.records, {active}, 3000, 1);
  EXPECT_NEAR(est2->clause_stats[0].selectivity, 0.5, 0.05);
}

TEST(TemplateTest, MicroTierPools) {
  for (const double tier : {0.35, 0.15, 0.01}) {
    const auto pool = MicroTierPredicates(tier);
    EXPECT_EQ(pool.size(), 10u);
    std::set<std::string> keys;
    for (const Clause& c : pool) keys.insert(c.CanonicalKey());
    EXPECT_EQ(keys.size(), 10u);
  }
  // Tier selectivities hold empirically.
  const Dataset ds = GenerateWinLog({3000, 17});
  auto est = EstimateClauseStats(ds.records, MicroTierPredicates(0.15), 3000, 1);
  ASSERT_TRUE(est.ok());
  for (const auto& s : est->clause_stats) {
    EXPECT_NEAR(s.selectivity, 0.15, 0.03);
  }
}

// ---------- Query generation (Table III) ----------

TEST(QueryGenTest, SpecBoundsHold) {
  const auto pool = TemplatesFor(DatasetKind::kWinLog).AllCandidates();
  WorkloadSpec spec;
  spec.num_queries = 200;
  spec.expected_predicates = 3.0;
  spec.min_predicates = 1;
  spec.max_predicates = 10;
  spec.seed = 5;
  const Workload w = GenerateWorkload(pool, spec);
  ASSERT_EQ(w.queries.size(), 200u);
  EXPECT_GE(w.MinPredicatesPerQuery(), 1u);
  EXPECT_LE(w.MaxPredicatesPerQuery(), 10u);
  // Expected total ~= 200 * 3 (Table III: 600-730 range).
  const size_t total = w.TotalPredicateOccurrences();
  EXPECT_GT(total, 450u);
  EXPECT_LT(total, 800u);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(w.queries[i].frequency, 1.0);
    EXPECT_FALSE(w.queries[i].name.empty());
  }
}

TEST(QueryGenTest, DeterministicUnderSeed) {
  const auto pool = TemplatesFor(DatasetKind::kYelp).AllCandidates();
  WorkloadSpec spec;
  spec.seed = 77;
  const Workload a = GenerateWorkload(pool, spec);
  const Workload b = GenerateWorkload(pool, spec);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].ToSql(), b.queries[i].ToSql());
  }
}

TEST(QueryGenTest, ConcentrationOrderingAcrossWorkloadPresets) {
  const auto pool = TemplatesFor(DatasetKind::kWinLog).AllCandidates();
  const Workload a = WorkloadA(pool);
  const Workload b = WorkloadB(pool);
  const Workload c = WorkloadC(pool);

  // What matters for CIAO is predicate *concentration*: how much of the
  // workload the most popular few predicates cover. (The third-moment
  // skewness factor itself is not monotone in the Zipf exponent, so it
  // is reported but not ordered here.)
  const auto top5_share = [](const Workload& w) {
    std::vector<double> counts = w.ClauseQueryCounts();
    std::sort(counts.begin(), counts.end(), std::greater<double>());
    double top = 0.0, total = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      if (i < 5) top += counts[i];
    }
    return total > 0 ? top / total : 0.0;
  };
  EXPECT_GT(top5_share(a), top5_share(b));
  EXPECT_GT(top5_share(b), top5_share(c));

  // A uses far fewer distinct predicates than C for the same totals.
  EXPECT_LT(a.DistinctClauses().size(), b.DistinctClauses().size());
  EXPECT_LT(b.DistinctClauses().size(), c.DistinctClauses().size());

  // Skewness factors are all finite and non-negative on these presets.
  EXPECT_GE(WorkloadSkewness(a), 0.0);
  EXPECT_GE(WorkloadSkewness(c), 0.0);
}

TEST(QueryGenTest, EmptyPoolYieldsEmptyWorkload) {
  EXPECT_TRUE(GenerateWorkload({}, WorkloadSpec{}).queries.empty());
}

// ---------- Micro workloads (§VII-E) ----------

TEST(MicroWorkloadTest, SelectivityConstruction) {
  const auto pool = MicroTierPredicates(0.15);
  const MicroWorkload mw = BuildSelectivityWorkload(pool, "0.15");
  ASSERT_EQ(mw.workload.queries.size(), 5u);
  ASSERT_EQ(mw.push_down.size(), 2u);
  for (const Query& q : mw.workload.queries) {
    EXPECT_EQ(q.clauses.size(), 3u);
    // Both pushed predicates appear in every query -> covered.
    EXPECT_EQ(q.clauses[0].CanonicalKey(), mw.push_down[0].CanonicalKey());
    EXPECT_EQ(q.clauses[1].CanonicalKey(), mw.push_down[1].CanonicalKey());
  }
}

TEST(MicroWorkloadTest, OverlapConstructions) {
  const auto pool = MicroTierPredicates(0.15);
  const MicroWorkload low = BuildOverlapWorkload(OverlapLevel::kLow, pool);
  const MicroWorkload med = BuildOverlapWorkload(OverlapLevel::kMedium, pool);
  const MicroWorkload high = BuildOverlapWorkload(OverlapLevel::kHigh, pool);
  EXPECT_EQ(low.workload.MaxPredicatesPerQuery(), 1u);
  EXPECT_EQ(med.workload.MaxPredicatesPerQuery(), 2u);
  EXPECT_EQ(high.workload.MaxPredicatesPerQuery(), 4u);

  // Coverage by the two pushed predicates: 2 / 4 / 5 queries.
  const auto covered = [](const MicroWorkload& mw) {
    std::set<std::string> pushed;
    for (const Clause& c : mw.push_down) pushed.insert(c.CanonicalKey());
    size_t n = 0;
    for (const Query& q : mw.workload.queries) {
      for (const Clause& c : q.clauses) {
        if (pushed.count(c.CanonicalKey()) > 0) {
          ++n;
          break;
        }
      }
    }
    return n;
  };
  EXPECT_EQ(covered(low), 2u);
  EXPECT_EQ(covered(med), 4u);
  EXPECT_EQ(covered(high), 5u);
}

TEST(MicroWorkloadTest, SkewConstructions) {
  const auto pool = MicroTierPredicates(0.15);
  const MicroWorkload low = BuildSkewWorkload(SkewLevel::kLow, pool);
  const MicroWorkload med = BuildSkewWorkload(SkewLevel::kMedium, pool);
  const MicroWorkload high = BuildSkewWorkload(SkewLevel::kHigh, pool);

  EXPECT_NEAR(low.achieved_skewness, 0.0, 1e-9);
  EXPECT_NEAR(med.achieved_skewness, 0.75, 0.01);
  EXPECT_NEAR(high.achieved_skewness, 2.14, 0.01);
  EXPECT_EQ(low.push_down.size(), 1u);

  // High: the pushed predicate is in all 5 queries.
  size_t high_cover = 0;
  for (const Query& q : high.workload.queries) {
    for (const Clause& c : q.clauses) {
      if (c.CanonicalKey() == high.push_down[0].CanonicalKey()) {
        ++high_cover;
        break;
      }
    }
  }
  EXPECT_EQ(high_cover, 5u);
}

// ---------- Selectivity estimation ----------

TEST(SelectivityTest, EstimatesExactOnFullSample) {
  // Hand-built records: field "x" equals 1 in exactly 3 of 10.
  std::vector<std::string> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back("{\"x\":" + std::to_string(i < 3 ? 1 : 0) + "}");
  }
  const Clause c = Clause::Of(SimplePredicate::KeyValue("x", 1));
  auto est = EstimateClauseStats(records, {c}, 10, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->clause_stats[0].selectivity, 0.3);
  EXPECT_EQ(est->sample_records, 10u);
  EXPECT_GT(est->mean_record_len, 0.0);
}

TEST(SelectivityTest, DisjunctionAndTermSelectivities) {
  std::vector<std::string> records = {
      R"({"name":"Bob"})", R"({"name":"John"})", R"({"name":"Alice"})",
      R"({"name":"Bob"})"};
  const Clause c = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                               SimplePredicate::Exact("name", "John")});
  auto est = EstimateClauseStats(records, {c}, 4, 1);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->clause_stats[0].selectivity, 0.75);
  ASSERT_EQ(est->clause_stats[0].term_selectivities.size(), 2u);
  EXPECT_DOUBLE_EQ(est->clause_stats[0].term_selectivities[0], 0.5);
  EXPECT_DOUBLE_EQ(est->clause_stats[0].term_selectivities[1], 0.25);
}

TEST(SelectivityTest, SampleApproximatesPopulation) {
  const Dataset ds = GenerateWinLog({4000, 19});
  const auto pool = MicroTierPredicates(0.35);
  auto full = EstimateClauseStats(ds.records, {pool[0]}, 4000, 1);
  auto sampled = EstimateClauseStats(ds.records, {pool[0]}, 500, 1);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->sample_records, 500u);
  EXPECT_NEAR(sampled->clause_stats[0].selectivity,
              full->clause_stats[0].selectivity, 0.08);
}

TEST(SelectivityTest, ErrorsOnEmptyInput) {
  EXPECT_FALSE(EstimateClauseStats({}, {}, 10, 1).ok());
  std::vector<std::string> garbage = {"not json", "also not"};
  EXPECT_FALSE(EstimateClauseStats(garbage, {}, 10, 1).ok());
}

// ---------- Query log / historical statistics ----------

TEST(QueryLogTest, FrequenciesFollowCounts) {
  Query a;
  a.clauses = {Clause::Of(SimplePredicate::KeyValue("x", 1))};
  Query b;
  b.clauses = {Clause::Of(SimplePredicate::KeyValue("y", 2))};

  QueryLog log;
  log.Record(a);
  log.Record(a);
  log.Record(a);
  log.Record(b);
  EXPECT_EQ(log.total_recorded(), 4u);
  EXPECT_EQ(log.distinct_queries(), 2u);

  const Workload wl = log.DeriveWorkload();
  ASSERT_EQ(wl.queries.size(), 2u);
  double total = 0.0;
  for (const Query& q : wl.queries) total += q.frequency;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The thrice-run query carries 3x the frequency.
  const double f0 = wl.queries[0].frequency;
  const double f1 = wl.queries[1].frequency;
  EXPECT_NEAR(std::max(f0, f1) / std::min(f0, f1), 3.0, 1e-9);
}

TEST(QueryLogTest, SignatureIsClauseOrderInvariant) {
  Clause c1 = Clause::Of(SimplePredicate::KeyValue("x", 1));
  Clause c2 = Clause::Of(SimplePredicate::KeyValue("y", 2));
  Query ab;
  ab.clauses = {c1, c2};
  Query ba;
  ba.clauses = {c2, c1};
  EXPECT_EQ(QueryLog::Signature(ab), QueryLog::Signature(ba));

  QueryLog log;
  log.Record(ab);
  log.Record(ba);
  EXPECT_EQ(log.distinct_queries(), 1u);
}

TEST(QueryLogTest, SignatureSeparatesProjectionSets) {
  // Identical predicates but different projected columns access
  // different physical columns, so the affinity miner needs their masses
  // kept apart; projection order and duplicates must not split them.
  Clause c = Clause::Of(SimplePredicate::KeyValue("x", 1));
  Query plain;
  plain.clauses = {c};
  Query proj_ab;
  proj_ab.clauses = {c};
  proj_ab.projected = {"a", "b"};
  Query proj_ba;
  proj_ba.clauses = {c};
  proj_ba.projected = {"b", "a", "b"};  // order/dup-invariant
  Query proj_c;
  proj_c.clauses = {c};
  proj_c.projected = {"c"};

  EXPECT_NE(QueryLog::Signature(plain), QueryLog::Signature(proj_ab));
  EXPECT_NE(QueryLog::Signature(proj_ab), QueryLog::Signature(proj_c));
  EXPECT_EQ(QueryLog::Signature(proj_ab), QueryLog::Signature(proj_ba));
  // Projection-free queries keep the legacy clause-only signature, so
  // pre-projection logs dedupe exactly as before.
  Query reordered = plain;
  EXPECT_EQ(QueryLog::Signature(plain), QueryLog::Signature(reordered));

  QueryLog log;
  log.Record(plain);
  log.Record(proj_ab);
  log.Record(proj_ba);
  log.Record(proj_c);
  EXPECT_EQ(log.distinct_queries(), 3u);

  // The derived workload keeps the projected sets for the miner.
  const Workload wl = log.DeriveWorkload();
  size_t with_projection = 0;
  for (const Query& q : wl.queries) {
    if (!q.projected.empty()) ++with_projection;
  }
  EXPECT_EQ(with_projection, 2u);
}

TEST(QueryLogTest, ProjectedQueriesDecayLikeClauseOnlyOnes) {
  Clause c = Clause::Of(SimplePredicate::KeyValue("x", 1));
  Query old_query;
  old_query.clauses = {c};
  old_query.projected = {"a"};
  Query new_query;
  new_query.clauses = {c};
  new_query.projected = {"b"};

  QueryLog log(/*half_life=*/10);
  for (int i = 0; i < 10; ++i) log.Record(old_query);
  for (int i = 0; i < 10; ++i) log.Record(new_query);
  const Workload wl = log.DeriveWorkload();
  ASSERT_EQ(wl.queries.size(), 2u);
  double old_freq = 0.0, new_freq = 0.0;
  for (const Query& q : wl.queries) {
    if (q.projected == std::vector<std::string>{"a"}) old_freq = q.frequency;
    if (q.projected == std::vector<std::string>{"b"}) new_freq = q.frequency;
  }
  EXPECT_GT(new_freq, old_freq * 1.5);
}

TEST(QueryLogTest, DecayForgetsOldQueries) {
  Query old_query;
  old_query.clauses = {Clause::Of(SimplePredicate::KeyValue("old", 1))};
  Query new_query;
  new_query.clauses = {Clause::Of(SimplePredicate::KeyValue("new", 1))};

  QueryLog log(/*half_life=*/10);
  for (int i = 0; i < 10; ++i) log.Record(old_query);
  for (int i = 0; i < 10; ++i) log.Record(new_query);
  const Workload wl = log.DeriveWorkload();
  ASSERT_EQ(wl.queries.size(), 2u);
  // After one halving the old query's weight is 5 vs the new one's 10.
  double old_freq = 0.0, new_freq = 0.0;
  for (const Query& q : wl.queries) {
    if (q.clauses[0].terms[0].field == "old") old_freq = q.frequency;
    if (q.clauses[0].terms[0].field == "new") new_freq = q.frequency;
  }
  EXPECT_GT(new_freq, old_freq * 1.5);
}

TEST(QueryLogTest, HalfLifeZeroNeverDecays) {
  // half_life = 0 disables decay entirely: weights equal raw counts no
  // matter how many queries pass, so frequencies follow counts exactly.
  Query a;
  a.clauses = {Clause::Of(SimplePredicate::KeyValue("a", 1))};
  Query b;
  b.clauses = {Clause::Of(SimplePredicate::KeyValue("b", 1))};
  QueryLog log(/*half_life=*/0);
  for (int i = 0; i < 1000; ++i) log.Record(a);
  for (int i = 0; i < 250; ++i) log.Record(b);
  const Workload wl = log.DeriveWorkload();
  ASSERT_EQ(wl.queries.size(), 2u);
  double fa = 0.0, fb = 0.0;
  for (const Query& q : wl.queries) {
    (q.clauses[0].terms[0].field == "a" ? fa : fb) = q.frequency;
  }
  EXPECT_NEAR(fa, 0.8, 1e-12);
  EXPECT_NEAR(fb, 0.2, 1e-12);
}

TEST(QueryLogTest, HalfLifeOneDecaysEveryRecord) {
  // half_life = 1 is the most aggressive legal setting: every Record
  // halves all weights first. Weights stay bounded (sum of a geometric
  // series, < 2 per entry) and frequencies stay normalized — the hottest
  // recent query dominates.
  Query old_query;
  old_query.clauses = {Clause::Of(SimplePredicate::KeyValue("old", 1))};
  Query new_query;
  new_query.clauses = {Clause::Of(SimplePredicate::KeyValue("new", 1))};
  QueryLog log(/*half_life=*/1);
  for (int i = 0; i < 100; ++i) log.Record(old_query);
  for (int i = 0; i < 8; ++i) log.Record(new_query);
  const Workload wl = log.DeriveWorkload();
  double total = 0.0;
  double old_freq = 0.0, new_freq = 0.0;
  for (const Query& q : wl.queries) {
    total += q.frequency;
    EXPECT_TRUE(std::isfinite(q.frequency));
    if (q.clauses[0].terms[0].field == "old") old_freq = q.frequency;
    if (q.clauses[0].terms[0].field == "new") new_freq = q.frequency;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // 100 stale records decayed through 8 halvings carry less mass than
  // the 8 fresh ones (geometric sum ~2 vs ~2 * 2^-8 * 100 ... compute:
  // old weight < 2 * 2^-8 * ... ) — the fresh query must dominate.
  EXPECT_GT(new_freq, old_freq);
}

TEST(QueryLogTest, ExtremeWeightsStayFiniteAndNormalized) {
  // No decay + many records: weights are raw counts in a double. They
  // must neither overflow nor lose normalization, and a huge half_life
  // (never reached) must behave exactly like "no decay yet".
  Query hot;
  hot.clauses = {Clause::Of(SimplePredicate::KeyValue("hot", 1))};
  Query rare;
  rare.clauses = {Clause::Of(SimplePredicate::KeyValue("rare", 1))};
  for (const uint64_t half_life : {uint64_t{0}, UINT64_MAX}) {
    QueryLog log(half_life);
    for (int i = 0; i < 100000; ++i) log.Record(hot);
    log.Record(rare);
    EXPECT_EQ(log.total_recorded(), 100001u);
    const Workload wl = log.DeriveWorkload();
    ASSERT_EQ(wl.queries.size(), 2u);
    double total = 0.0;
    for (const Query& q : wl.queries) {
      EXPECT_TRUE(std::isfinite(q.frequency));
      EXPECT_GT(q.frequency, 0.0);
      total += q.frequency;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(QueryLogTest, TinyWeightsDecayOutOfTheLog) {
  // An entry halved far below any representable influence is dropped, so
  // a long-lived log under heavy drift stays bounded.
  Query ancient;
  ancient.clauses = {Clause::Of(SimplePredicate::KeyValue("ancient", 1))};
  Query fresh;
  fresh.clauses = {Clause::Of(SimplePredicate::KeyValue("fresh", 1))};
  QueryLog log(/*half_life=*/1);
  log.Record(ancient);
  // 50 halvings take the ancient weight below 1e-12.
  for (int i = 0; i < 64; ++i) log.Record(fresh);
  EXPECT_EQ(log.distinct_queries(), 1u);
  const Workload wl = log.DeriveWorkload();
  ASSERT_EQ(wl.queries.size(), 1u);
  EXPECT_EQ(wl.queries[0].clauses[0].terms[0].field, "fresh");
}

TEST(QueryLogTest, DedupUnderClauseAndTermReordering) {
  // Signature canonicalization must dedup queries whose clauses arrive
  // in any order — including multi-term OR clauses with reordered terms
  // (Clause::CanonicalKey sorts term keys).
  const SimplePredicate p1 = SimplePredicate::KeyValue("x", 1);
  const SimplePredicate p2 = SimplePredicate::Exact("s", "v");
  const SimplePredicate p3 = SimplePredicate::Presence("z");

  Query abc;
  abc.clauses = {Clause::Of(p1), Clause::Or({p2, p3})};
  Query cba;
  cba.clauses = {Clause::Or({p3, p2}), Clause::Of(p1)};
  EXPECT_EQ(QueryLog::Signature(abc), QueryLog::Signature(cba));

  QueryLog log;
  log.Record(abc);
  log.Record(cba);
  log.Record(abc);
  EXPECT_EQ(log.distinct_queries(), 1u);
  const Workload wl = log.DeriveWorkload();
  ASSERT_EQ(wl.queries.size(), 1u);
  EXPECT_NEAR(wl.queries[0].frequency, 1.0, 1e-12);

  // Different clause sets must NOT collapse.
  Query different;
  different.clauses = {Clause::Of(p1), Clause::Of(p2)};
  EXPECT_NE(QueryLog::Signature(abc), QueryLog::Signature(different));
  log.Record(different);
  EXPECT_EQ(log.distinct_queries(), 2u);
}

TEST(WorkloadDivergenceTest, IdenticalDisjointAndPartialMixes) {
  Query qa;
  qa.clauses = {Clause::Of(SimplePredicate::KeyValue("a", 1))};
  qa.frequency = 1.0;
  Query qb;
  qb.clauses = {Clause::Of(SimplePredicate::KeyValue("b", 1))};
  qb.frequency = 1.0;

  Workload only_a;
  only_a.queries = {qa};
  Workload only_b;
  only_b.queries = {qb};
  Workload mixed;
  mixed.queries = {qa, qb};  // 50/50

  EXPECT_DOUBLE_EQ(WorkloadDivergence(only_a, only_a), 0.0);
  EXPECT_DOUBLE_EQ(WorkloadDivergence(only_a, only_b), 1.0);
  EXPECT_NEAR(WorkloadDivergence(only_a, mixed), 0.5, 1e-12);
  EXPECT_NEAR(WorkloadDivergence(mixed, only_b), 0.5, 1e-12);

  Workload empty;
  EXPECT_DOUBLE_EQ(WorkloadDivergence(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(WorkloadDivergence(empty, only_a), 1.0);

  // Clause order within a query does not contribute divergence.
  Query qab;
  qab.clauses = {qa.clauses[0], qb.clauses[0]};
  Query qba;
  qba.clauses = {qb.clauses[0], qa.clauses[0]};
  Workload w1;
  w1.queries = {qab};
  Workload w2;
  w2.queries = {qba};
  EXPECT_DOUBLE_EQ(WorkloadDivergence(w1, w2), 0.0);
}

TEST(QueryLogTest, EmptyAndClear) {
  QueryLog log;
  EXPECT_TRUE(log.DeriveWorkload().queries.empty());
  Query q;
  q.clauses = {Clause::Of(SimplePredicate::KeyValue("x", 1))};
  log.Record(q);
  log.Clear();
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.DeriveWorkload().queries.empty());
}

TEST(QueryLogTest, DerivedFrequenciesDriveSelection) {
  // The optimizer should favor the predicate of the hot query.
  Clause hot = Clause::Of(SimplePredicate::KeyValue("hot", 1));
  Clause cold = Clause::Of(SimplePredicate::KeyValue("cold", 1));
  Query qh;
  qh.clauses = {hot};
  Query qc;
  qc.clauses = {cold};
  QueryLog log;
  for (int i = 0; i < 9; ++i) log.Record(qh);
  log.Record(qc);
  const Workload wl = log.DeriveWorkload();

  std::vector<ClauseStats> stats(2);
  stats[0].selectivity = 0.5;
  stats[0].term_selectivities = {0.5};
  stats[1].selectivity = 0.5;
  stats[1].term_selectivities = {0.5};
  // Budget for exactly one predicate.
  const CostModel model = CostModel::Default();
  const double one_cost =
      model.SimplePredicateCostUs(hot.terms[0], 0.5, 100.0);
  auto plan = SelectPredicates(wl, stats, model, 100.0, one_cost * 1.5);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->selected.size(), 1u);
  EXPECT_EQ(plan->selected[0].clause.terms[0].field, "hot");
}

}  // namespace
}  // namespace ciao::workload
