// End-to-end CSV pipeline (paper §IV-A extension): clients prefilter raw
// CSV lines with value-only pattern programs, the server partially loads
// annotated chunks through the CSV typed loader into the same columnar
// format, and the standard skipping executor answers queries — with
// exact counts against brute force over the original data.

#include <gtest/gtest.h>

#include "columnar/file_writer.h"
#include "csv/converter.h"
#include "csv/pattern_compiler.h"
#include "engine/executor.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/catalog.h"
#include "workload/csv_export.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

/// Minimal CSV ingest path mirroring PartialLoader: split each line chunk
/// by the OR of its bitvectors, load survivors via CsvBatchBuilder,
/// sideline the rest as raw CSV.
struct CsvIngestResult {
  uint64_t loaded = 0;
  uint64_t sidelined = 0;
};

CsvIngestResult IngestCsvChunk(const std::vector<std::string>& lines,
                               size_t start, size_t end,
                               const std::vector<csv::RawCsvClauseProgram>& programs,
                               bool partial, TableCatalog* catalog) {
  const size_t n = end - start;
  BitVectorSet annotations(programs.size(), n);
  for (size_t p = 0; p < programs.size(); ++p) {
    for (size_t i = 0; i < n; ++i) {
      if (programs[p].Matches(lines[start + i])) {
        annotations.mutable_vector(p)->Set(i, true);
      }
    }
  }
  BitVector mask =
      partial ? annotations.UnionAll() : BitVector(n, true);

  CsvIngestResult result;
  csv::CsvBatchBuilder builder(catalog->schema());
  for (size_t i = 0; i < n; ++i) {
    if (mask.Get(i)) {
      EXPECT_TRUE(builder.AppendLine(lines[start + i]).ok());
      ++result.loaded;
    } else {
      catalog->mutable_raw()->Append(lines[start + i]);
      ++result.sidelined;
    }
  }
  if (builder.num_rows() > 0) {
    auto compacted = annotations.CompactBy(mask);
    EXPECT_TRUE(compacted.ok());
    columnar::TableWriter writer(catalog->schema());
    const columnar::RecordBatch batch = builder.Finish();
    EXPECT_TRUE(writer.AppendRowGroup(batch, *compacted).ok());
    catalog->AddSegment(std::move(writer).Finish(), batch.num_rows());
  }
  return result;
}

TEST(CsvPipelineTest, PartialLoadAndSkippingMatchBruteForce) {
  const workload::Dataset json_ds = workload::GenerateWinLog({500, 61});
  auto csv_ds = workload::ExportCsv(json_ds);
  ASSERT_TRUE(csv_ds.ok());

  // Push two micro-tier substring predicates (CSV-supported).
  const auto tier = workload::MicroTierPredicates(0.15);
  PredicateRegistry registry;
  std::vector<csv::RawCsvClauseProgram> programs;
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(registry.Register(tier[i], 0.15, 1.0).ok());
    auto prog = csv::RawCsvClauseProgram::Compile(tier[i]);
    ASSERT_TRUE(prog.ok());
    programs.push_back(std::move(prog).value());
  }

  TableCatalog catalog(csv_ds->schema);
  CsvIngestResult totals;
  const size_t chunk = 120;
  for (size_t start = 0; start < csv_ds->lines.size(); start += chunk) {
    const size_t end = std::min(csv_ds->lines.size(), start + chunk);
    const CsvIngestResult r = IngestCsvChunk(csv_ds->lines, start, end,
                                             programs, /*partial=*/true,
                                             &catalog);
    totals.loaded += r.loaded;
    totals.sidelined += r.sidelined;
  }
  EXPECT_GT(totals.sidelined, 0u);
  EXPECT_EQ(totals.loaded + totals.sidelined, csv_ds->lines.size());
  // Two 0.15-selectivity predicates: union ratio ~ 1-(0.85)^2 ~ 0.28.
  const double ratio = static_cast<double>(totals.loaded) /
                       static_cast<double>(csv_ds->lines.size());
  EXPECT_NEAR(ratio, 0.28, 0.07);

  // Queries over pushed clauses: skipping plans, exact counts vs brute
  // force on the ORIGINAL JSON records.
  QueryExecutor executor(&catalog, &registry);
  for (size_t i = 0; i < 2; ++i) {
    Query q;
    q.clauses = {tier[i]};
    uint64_t expected = 0;
    for (const std::string& r : json_ds.records) {
      auto v = json::Parse(r);
      if (EvaluateQuery(q, *v)) ++expected;
    }
    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, expected) << q.ToSql();
  }
}

TEST(CsvPipelineTest, FullScanReachesCsvSidelineViaJsonBridge) {
  // A query with no pushed clause must consult the sidelined raw CSV.
  // The engine's raw path parses JSON, so bridge the sideline through
  // CsvLineToJson and evaluate semantically — asserting the bridge gives
  // the same verdicts the JSON originals do.
  const workload::Dataset json_ds = workload::GenerateWinLog({200, 67});
  auto csv_ds = workload::ExportCsv(json_ds);
  ASSERT_TRUE(csv_ds.ok());

  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  for (size_t pi = 0; pi < pool.size(); pi += 17) {
    const Clause& clause = pool[pi];
    for (size_t i = 0; i < json_ds.records.size(); ++i) {
      auto json_rec = json::Parse(json_ds.records[i]);
      auto bridged = csv::CsvLineToJson(csv_ds->lines[i], csv_ds->schema);
      ASSERT_TRUE(bridged.ok());
      EXPECT_EQ(EvaluateClause(clause, *json_rec),
                EvaluateClause(clause, *bridged))
          << clause.ToSql() << " row " << i;
    }
  }
}

}  // namespace
}  // namespace ciao
