// The free Find() dispatch memoizes the Horspool shift table per thread.
// Since the adaptive runtime made it reachable from backfill and loader
// worker threads, this suite hammers it from many threads concurrently —
// mixed needles, interleaved kernel kinds — and checks every result
// against the std::string_view::find oracle. Run it under
// -DCIAO_SANITIZE=thread (the CI TSan job does) to prove the memo shares
// no mutable state across threads.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "matcher/kernels.h"

namespace ciao {
namespace {

TEST(MatcherConcurrencyTest, HorspoolMemoIsThreadSafe) {
  // Haystacks and needles with deliberate overlap so hits and misses,
  // repeats and needle switches all occur on every thread.
  Rng rng(0xBEEF);
  std::vector<std::string> haystacks;
  for (int i = 0; i < 32; ++i) {
    std::string hay;
    for (int w = 0; w < 40; ++w) {
      hay += rng.NextIdentifier(rng.NextInt(2, 9));
      hay += ' ';
    }
    haystacks.push_back(std::move(hay));
  }
  std::vector<std::string> needles;
  for (int i = 0; i < 12; ++i) {
    const std::string& hay = haystacks[rng.NextBounded(haystacks.size())];
    const size_t len = static_cast<size_t>(rng.NextInt(2, 12));
    const size_t start = rng.NextBounded(hay.size() - len);
    needles.push_back(hay.substr(start, len));  // guaranteed-hit needles
    needles.push_back(rng.NextIdentifier(8));   // likely-miss needles
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Per-thread rng so the threads interleave different needles —
      // exactly the access pattern that would corrupt a shared memo.
      Rng local(0x1234 + static_cast<uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::string& hay =
            haystacks[local.NextBounded(haystacks.size())];
        const std::string& needle =
            needles[local.NextBounded(needles.size())];
        const size_t expected = FindStd(hay, needle);
        if (Find(SearchKernel::kHorspool, hay, needle) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Mix in the other kernels through the same dispatch: backfill
        // workers use whatever kernel the config chose.
        if (Find(SearchKernel::kSwar, hay, needle) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (Find(SearchKernel::kMemchr, hay, needle) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(MatcherConcurrencyTest, RepeatedNeedleReusesMemoCorrectly) {
  // Same needle many times, then a switch, then back — the memo's
  // rebuild-on-change path must stay correct within one thread too.
  const std::string hay = "the quick brown fox jumps over the lazy dog";
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(Find(SearchKernel::kHorspool, hay, "fox"), 16u);
    }
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(Find(SearchKernel::kHorspool, hay, "lazy"), 35u);
    }
    EXPECT_EQ(Find(SearchKernel::kHorspool, hay, "unicorn"),
              std::string_view::npos);
  }
}

}  // namespace
}  // namespace ciao
