// Multi-client coordination: heterogeneous clients with different budgets
// evaluate different predicate subsets; the server fills unevaluated
// predicates with conservative all-ones vectors. Correctness must hold
// regardless of which client produced each chunk (the paper's per-client
// budget trade-off, abstract + §I).

#include <gtest/gtest.h>

#include "client/coordinator.h"
#include "engine/executor.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/partial_loader.h"
#include "storage/transport.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

uint64_t BruteForceCount(const std::vector<std::string>& records,
                         const Query& q) {
  uint64_t count = 0;
  for (const std::string& r : records) {
    auto v = json::Parse(r);
    if (v.ok() && EvaluateQuery(q, *v)) ++count;
  }
  return count;
}

struct MultiClientFixture {
  workload::Dataset ds = workload::GenerateWinLog({600, 41});
  PredicateRegistry registry;
  InMemoryTransport transport;
  std::vector<Clause> pushed = workload::MicroTierPredicates(0.15);

  MultiClientFixture() {
    pushed.resize(4);
    double cost = 1.0;
    for (const Clause& c : pushed) {
      // Increasing costs: 1, 2, 3, 4 µs.
      EXPECT_TRUE(registry.Register(c, 0.15, cost).ok());
      cost += 1.0;
    }
  }
};

TEST(CoordinatorTest, AssignsBudgetPrefixes) {
  MultiClientFixture fx;
  MultiClientCoordinator coordinator(&fx.registry, &fx.transport, 100);

  // Registry costs are 1,2,3,4. Budgets: 0 -> {}, 1 -> {0}, 3.5 -> {0,1},
  // 100 -> all.
  coordinator.AddClient({"tiny", 0.0});
  coordinator.AddClient({"small", 1.0});
  coordinator.AddClient({"medium", 3.5});
  coordinator.AddClient({"big", 100.0});
  ASSERT_EQ(coordinator.num_clients(), 4u);
  EXPECT_TRUE(coordinator.assigned_ids(0).empty());
  EXPECT_EQ(coordinator.assigned_ids(1), (std::vector<uint32_t>{0}));
  EXPECT_EQ(coordinator.assigned_ids(2), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(coordinator.assigned_ids(3), (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(CoordinatorTest, SkipsUnaffordableButTakesLaterAffordable) {
  MultiClientFixture fx;
  MultiClientCoordinator coordinator(&fx.registry, &fx.transport, 100);
  // Budget 4.1: takes cost-1, cost-2 (total 3), cannot afford cost-3
  // (would be 6), but cost-4 doesn't fit either (3+4=7). -> {0,1}
  coordinator.AddClient({"mid", 4.1});
  EXPECT_EQ(coordinator.assigned_ids(0), (std::vector<uint32_t>{0, 1}));
}

TEST(CoordinatorTest, MixedClientsEndToEndCorrectness) {
  MultiClientFixture fx;
  MultiClientCoordinator coordinator(&fx.registry, &fx.transport, 90);
  const size_t weak = coordinator.AddClient({"weak", 1.0});    // 1 predicate
  const size_t strong = coordinator.AddClient({"strong", 10.0});  // all 4

  // Split the stream between the two clients.
  const size_t half = fx.ds.records.size() / 2;
  std::vector<std::string> part1(fx.ds.records.begin(),
                                 fx.ds.records.begin() + half);
  std::vector<std::string> part2(fx.ds.records.begin() + half,
                                 fx.ds.records.end());
  ASSERT_TRUE(coordinator.session(weak)->SendRecords(part1).ok());
  ASSERT_TRUE(coordinator.session(strong)->SendRecords(part2).ok());

  // Server: drain, expand annotations, load with partial loading ON.
  TableCatalog catalog(fx.ds.schema);
  PartialLoader loader(fx.ds.schema, fx.registry.size());
  LoadStats stats;
  while (true) {
    auto payload = fx.transport.Receive();
    ASSERT_TRUE(payload.ok());
    if (!payload->has_value()) break;
    auto msg = ChunkMessage::Deserialize(**payload);
    ASSERT_TRUE(msg.ok());
    auto annotations = msg->ExpandAnnotations(fx.registry.size());
    ASSERT_TRUE(annotations.ok());
    ASSERT_TRUE(loader
                    .IngestChunk(msg->chunk, *annotations,
                                 /*partial_loading_enabled=*/true, &catalog,
                                 &stats)
                    .ok());
  }
  EXPECT_EQ(stats.records_in, fx.ds.records.size());

  // The weak client only evaluated predicate 0, so its chunks load a
  // superset (conservative all-ones for predicates 1..3 force loading of
  // everything from that client). Strong client's chunks load partially.
  EXPECT_GT(stats.records_loaded, 0u);
  EXPECT_GT(stats.records_sidelined, 0u);

  // Queries over pushed predicates: exact counts, skipping plans.
  QueryExecutor executor(&catalog, &fx.registry);
  for (size_t p = 0; p < fx.pushed.size(); ++p) {
    Query q;
    q.clauses = {fx.pushed[p]};
    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, BruteForceCount(fx.ds.records, q))
        << q.ToSql();
  }

  // Conjunction across two pushed predicates.
  Query conj;
  conj.clauses = {fx.pushed[0], fx.pushed[1]};
  auto result = executor.Execute(conj);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, BruteForceCount(fx.ds.records, conj));
}

TEST(CoordinatorTest, WeakClientChunksLoadConservativelyMore) {
  MultiClientFixture fx;
  MultiClientCoordinator coordinator(&fx.registry, &fx.transport, 300);
  const size_t weak = coordinator.AddClient({"weak", 1.0});
  const size_t strong = coordinator.AddClient({"strong", 10.0});

  // Send the SAME records through both clients into separate catalogs.
  const auto load_through = [&](size_t client) {
    TableCatalog catalog(fx.ds.schema);
    PartialLoader loader(fx.ds.schema, fx.registry.size());
    LoadStats stats;
    EXPECT_TRUE(coordinator.session(client)->SendRecords(fx.ds.records).ok());
    while (true) {
      auto payload = fx.transport.Receive();
      EXPECT_TRUE(payload.ok());
      if (!payload->has_value()) break;
      auto msg = ChunkMessage::Deserialize(**payload);
      EXPECT_TRUE(msg.ok());
      auto annotations = msg->ExpandAnnotations(fx.registry.size());
      EXPECT_TRUE(annotations.ok());
      EXPECT_TRUE(
          loader.IngestChunk(msg->chunk, *annotations, true, &catalog, &stats)
              .ok());
    }
    return stats;
  };

  const LoadStats weak_stats = load_through(weak);
  const LoadStats strong_stats = load_through(strong);
  // Unevaluated predicates are "maybe" -> the weak client's records all
  // load; the strong client's load ratio is the true union selectivity.
  EXPECT_EQ(weak_stats.LoadingRatio(), 1.0);
  EXPECT_LT(strong_stats.LoadingRatio(), 0.75);
}

}  // namespace
}  // namespace ciao
