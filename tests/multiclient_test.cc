// Heterogeneous fleet coordination: clients with different budgets get
// different (marginal-gain-optimal) predicate subsets, chunks flow
// through a work-stealing scheduler, and every chunk carries its
// evaluated-predicate mask so the server can complete the missing bits —
// or fall back to conservative all-ones. Correctness must hold for ANY
// fleet composition, speed mix, or injected failure: loaded rows and
// query results equal the sequential single-client oracle (the paper's
// per-client budget trade-off, abstract + §I).

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "client/fleet.h"
#include "engine/executor.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/partial_loader.h"
#include "storage/transport.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

uint64_t BruteForceCount(const std::vector<std::string>& records,
                         const Query& q) {
  uint64_t count = 0;
  for (const std::string& r : records) {
    auto v = json::Parse(r);
    if (v.ok() && EvaluateQuery(q, *v)) ++count;
  }
  return count;
}

struct MultiClientFixture {
  workload::Dataset ds = workload::GenerateWinLog({600, 41});
  PredicateRegistry registry;
  std::vector<Clause> pushed = workload::MicroTierPredicates(0.15);

  MultiClientFixture() {
    pushed.resize(4);
    double cost = 1.0;
    for (const Clause& c : pushed) {
      // Increasing costs: 1, 2, 3, 4 µs; identical selectivities, so the
      // allocator's gain/cost ranking is ascending-cost order.
      EXPECT_TRUE(registry.Register(c, 0.15, cost).ok());
      cost += 1.0;
    }
  }
};

/// One complete fleet ingest: FleetScheduler -> BoundedTransport ->
/// LoaderPool -> catalog. Collects everything a test wants to compare.
struct FleetRun {
  std::unique_ptr<TableCatalog> catalog;
  LoadStats load;
  PrefilterStats prefilter;
  std::vector<FleetClientStats> clients;
  uint64_t steals = 0;
  Status send_status;
  Status load_status;

  bool ok() const { return send_status.ok() && load_status.ok(); }
};

FleetRun RunFleet(const workload::Dataset& ds,
                  const PredicateRegistry& registry,
                  std::vector<FleetClientSpec> specs,
                  const std::vector<std::string>& records,
                  FleetOptions options, bool server_completion,
                  size_t num_loaders = 2) {
  FleetRun run;
  run.catalog = std::make_unique<TableCatalog>(ds.schema);
  PartialLoader loader(ds.schema, registry, /*annotation_epoch=*/0,
                       server_completion);
  BoundedTransport transport(/*capacity=*/8);
  transport.AddProducers(1);
  LoaderPoolOptions loader_options;
  loader_options.num_loaders = num_loaders;
  LoaderPool loaders(&loader, &transport, run.catalog.get(), loader_options);
  loaders.Start();

  FleetScheduler fleet(&registry, &transport, std::move(specs), options);
  run.send_status = fleet.SendRecords(records);
  transport.ProducerDone();
  run.load_status = loaders.Join();

  run.load = loaders.stats();
  run.prefilter = fleet.stats();
  run.steals = fleet.steals();
  for (size_t c = 0; c < fleet.num_clients(); ++c) {
    run.clients.push_back(fleet.client_stats(c));
  }
  return run;
}

/// The sequential single-client oracle: one full-budget client, one
/// loader, no concurrency.
FleetRun RunOracle(const workload::Dataset& ds,
                   const PredicateRegistry& registry,
                   const std::vector<std::string>& records,
                   size_t chunk_size = 100) {
  FleetOptions options;
  options.chunk_size = chunk_size;
  return RunFleet(ds, registry, {FleetClientSpec{"oracle"}}, records, options,
                  /*server_completion=*/true, /*num_loaders=*/1);
}

// ---------- Budget-aware allocator ----------

TEST(AllocatorTest, BudgetTiersSelectAffordableSets) {
  MultiClientFixture fx;
  // Registry costs are 1,2,3,4 with equal gains. Budgets: 0 -> {},
  // 1 -> {0}, 3.5 -> {0,1}, inf -> all.
  EXPECT_TRUE(AllocateForBudget(fx.registry, 0.0).ids.empty());
  EXPECT_EQ(AllocateForBudget(fx.registry, 1.0).ids,
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(AllocateForBudget(fx.registry, 3.5).ids,
            (std::vector<uint32_t>{0, 1}));
  const BudgetAllocation all = AllocateForBudget(
      fx.registry, std::numeric_limits<double>::infinity());
  EXPECT_EQ(all.ids, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(all.cost_us, 10.0);
}

TEST(AllocatorTest, SkipsUnaffordableButTakesLaterAffordable) {
  MultiClientFixture fx;
  // Budget 4.1: takes cost-1, cost-2 (total 3), cannot afford cost-3
  // (would be 6), and cost-4 doesn't fit either (3+4=7). -> {0,1}
  EXPECT_EQ(AllocateForBudget(fx.registry, 4.1).ids,
            (std::vector<uint32_t>{0, 1}));
}

TEST(AllocatorTest, RanksByMarginalGainPerCostNotRegistryOrder) {
  // Predicate 0 is nearly useless (sel .9) but first in registry order;
  // predicate 1 filters almost everything at the same cost. A 1µs budget
  // must pick {1} — the old prefix rule would have picked {0}.
  auto pushed = workload::MicroTierPredicates(0.15);
  PredicateRegistry registry;
  ASSERT_TRUE(registry.Register(pushed[0], 0.9, 1.0).ok());
  ASSERT_TRUE(registry.Register(pushed[1], 0.1, 1.0).ok());
  EXPECT_EQ(AllocateForBudget(registry, 1.0).ids,
            (std::vector<uint32_t>{1}));
}

TEST(AllocatorTest, BudgetsCanYieldDisjointNonPrefixSets) {
  // cost 3 / gain .9 (ratio .30) vs cost 2 / gain .5 (ratio .25): budget
  // 3 takes {0}; budget 2 cannot afford 0 and falls through to {1}.
  // Non-nested, non-prefix — the knapsack shape the prefix rule missed.
  auto pushed = workload::MicroTierPredicates(0.15);
  PredicateRegistry registry;
  ASSERT_TRUE(registry.Register(pushed[0], 0.1, 3.0).ok());
  ASSERT_TRUE(registry.Register(pushed[1], 0.5, 2.0).ok());
  EXPECT_EQ(AllocateForBudget(registry, 3.0).ids,
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(AllocateForBudget(registry, 2.0).ids,
            (std::vector<uint32_t>{1}));
}

TEST(AllocatorTest, BatchedBaseChargedOnceOnFirstPick) {
  auto pushed = workload::MicroTierPredicates(0.15);
  PredicateRegistry registry;
  ASSERT_TRUE(registry.Register(pushed[0], 0.2, 1.0).ok());
  ASSERT_TRUE(registry.Register(pushed[1], 0.2, 1.0).ok());
  registry.set_matcher_mode(ClientMatcherMode::kBatched);
  registry.set_base_cost_us(2.0);
  // base 2 + marginal 1 = 3 > 2.5: nothing fits.
  EXPECT_TRUE(AllocateForBudget(registry, 2.5).ids.empty());
  // Budget 3 affords exactly one predicate (base charged once)...
  const BudgetAllocation one = AllocateForBudget(registry, 3.0);
  EXPECT_EQ(one.ids, (std::vector<uint32_t>{0}));
  EXPECT_DOUBLE_EQ(one.cost_us, 3.0);
  // ...and budget 4 both — the second pays only its marginal µs.
  const BudgetAllocation both = AllocateForBudget(registry, 4.0);
  EXPECT_EQ(both.ids, (std::vector<uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(both.cost_us, 4.0);

  // Per-pattern mode has no shared scan: budget 2 fits both predicates.
  registry.set_matcher_mode(ClientMatcherMode::kPerPattern);
  EXPECT_EQ(AllocateForBudget(registry, 2.0).ids,
            (std::vector<uint32_t>{0, 1}));
}

// ---------- Coordinator edge cases ----------

TEST(FleetEdgeCaseTest, ZeroBudgetClientShipsUnannotatedChunks) {
  MultiClientFixture fx;
  FleetOptions options;
  options.chunk_size = 90;
  FleetRun run = RunFleet(fx.ds, fx.registry, {{"zero", 0.0}}, fx.ds.records,
                          options, /*server_completion=*/true);
  ASSERT_TRUE(run.ok()) << run.send_status.ToString();
  EXPECT_EQ(run.load.records_in, fx.ds.records.size());
  // The server completed every predicate on every chunk...
  const size_t num_chunks = (fx.ds.records.size() + 89) / 90;
  EXPECT_EQ(run.load.predicates_completed, num_chunks * fx.registry.size());
  // ...so loading is as precise as the oracle's.
  FleetRun oracle = RunOracle(fx.ds, fx.registry, fx.ds.records);
  EXPECT_EQ(run.load.records_loaded, oracle.load.records_loaded);
  EXPECT_EQ(run.load.records_sidelined, oracle.load.records_sidelined);
}

TEST(FleetEdgeCaseTest, AllZeroBudgetFleetStaysCorrect) {
  MultiClientFixture fx;
  FleetOptions options;
  options.chunk_size = 50;
  FleetRun run = RunFleet(fx.ds, fx.registry,
                          {{"z0", 0.0}, {"z1", 0.0}, {"z2", 0.0}},
                          fx.ds.records, options, /*server_completion=*/true);
  ASSERT_TRUE(run.ok());
  FleetRun oracle = RunOracle(fx.ds, fx.registry, fx.ds.records);
  EXPECT_EQ(run.load.records_loaded, oracle.load.records_loaded);

  QueryExecutor executor(run.catalog.get(), &fx.registry);
  for (const Clause& c : fx.pushed) {
    Query q;
    q.clauses = {c};
    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, BruteForceCount(fx.ds.records, q)) << q.ToSql();
  }
}

TEST(FleetEdgeCaseTest, PredicateTooExpensiveForEveryClientIsUncovered) {
  auto pushed = workload::MicroTierPredicates(0.15);
  PredicateRegistry registry;
  ASSERT_TRUE(registry.Register(pushed[0], 0.2, 1.0).ok());
  ASSERT_TRUE(registry.Register(pushed[1], 0.2, 100.0).ok());  // unaffordable

  workload::Dataset ds = workload::GenerateWinLog({400, 17});
  InMemoryTransport unused;
  FleetScheduler fleet(&registry, &unused, {{"a", 5.0}, {"b", 10.0}}, {});
  EXPECT_EQ(fleet.assigned_ids(0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(fleet.assigned_ids(1), (std::vector<uint32_t>{0}));
  EXPECT_EQ(fleet.uncovered_ids(), (std::vector<uint32_t>{1}));

  // End-to-end the fleet still matches the oracle: the server completes
  // the uncovered predicate on every chunk.
  FleetOptions options;
  options.chunk_size = 64;
  FleetRun run = RunFleet(ds, registry, {{"a", 5.0}, {"b", 10.0}}, ds.records,
                          options, /*server_completion=*/true);
  ASSERT_TRUE(run.ok());
  FleetRun oracle = RunOracle(ds, registry, ds.records);
  EXPECT_EQ(run.load.records_loaded, oracle.load.records_loaded);
  QueryExecutor executor(run.catalog.get(), &registry);
  for (size_t p = 0; p < 2; ++p) {
    Query q;
    q.clauses = {pushed[p]};
    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, BruteForceCount(ds.records, q)) << q.ToSql();
  }
}

// ---------- Conservative fallback (server completion off) ----------

TEST(FleetTest, WithoutCompletionWeakChunksLoadConservativelyMore) {
  MultiClientFixture fx;
  FleetOptions options;
  options.chunk_size = 100;
  // Budget 1 affords only predicate 0; without completion the three
  // unevaluated predicates are all-ones per chunk, loading everything.
  FleetRun weak = RunFleet(fx.ds, fx.registry, {{"weak", 1.0}},
                           fx.ds.records, options,
                           /*server_completion=*/false);
  ASSERT_TRUE(weak.ok());
  EXPECT_EQ(weak.load.LoadingRatio(), 1.0);
  EXPECT_EQ(weak.load.predicates_completed, 0u);

  // With completion the same weak fleet loads exactly the oracle's rows.
  FleetRun exact = RunFleet(fx.ds, fx.registry, {{"weak", 1.0}},
                            fx.ds.records, options,
                            /*server_completion=*/true);
  ASSERT_TRUE(exact.ok());
  FleetRun oracle = RunOracle(fx.ds, fx.registry, fx.ds.records);
  EXPECT_EQ(exact.load.records_loaded, oracle.load.records_loaded);
  EXPECT_LT(exact.load.LoadingRatio(), 0.75);

  // Either way queries stay exact (all-ones is sound, just imprecise).
  QueryExecutor executor(weak.catalog.get(), &fx.registry);
  for (const Clause& c : fx.pushed) {
    Query q;
    q.clauses = {c};
    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, BruteForceCount(fx.ds.records, q)) << q.ToSql();
  }
}

// ---------- Property/fuzz: any fleet == the sequential oracle ----------

TEST(FleetPropertyTest, RandomHeterogeneousFleetsMatchSequentialOracle) {
  MultiClientFixture fx;
  FleetRun oracle = RunOracle(fx.ds, fx.registry, fx.ds.records);
  ASSERT_TRUE(oracle.ok());

  // Queries checked each trial: every single pushed predicate plus one
  // conjunction.
  std::vector<Query> queries;
  for (const Clause& c : fx.pushed) {
    Query q;
    q.clauses = {c};
    queries.push_back(q);
  }
  Query conj;
  conj.clauses = {fx.pushed[0], fx.pushed[1]};
  queries.push_back(conj);
  std::vector<uint64_t> expected;
  expected.reserve(queries.size());
  for (const Query& q : queries) {
    expected.push_back(BruteForceCount(fx.ds.records, q));
  }

  for (uint64_t trial = 0; trial < 12; ++trial) {
    std::mt19937_64 rng(0xF1EE7 + trial);
    const size_t num_clients = 1 + rng() % 5;
    std::vector<FleetClientSpec> specs(num_clients);
    // At most num_clients-1 failures, so the fleet always finishes.
    size_t failures_left = num_clients - 1;
    for (size_t c = 0; c < num_clients; ++c) {
      specs[c].name = "c" + std::to_string(c);
      // Budgets span empty, partial, and full assignments (total cost 10).
      specs[c].budget_us = static_cast<double>(rng() % 1200) / 100.0;
      // Mild slowdowns only — the delays must not dominate test time.
      specs[c].speed_factor = 0.5 + static_cast<double>(rng() % 50) / 100.0;
      if (failures_left > 0 && rng() % 3 == 0) {
        specs[c].fail_after_chunks = rng() % 4;
        --failures_left;
      }
    }
    FleetOptions options;
    options.chunk_size = 7 + rng() % 200;
    options.work_stealing = rng() % 4 != 0;  // mostly on, sometimes static
    const size_t num_loaders = 1 + rng() % 3;

    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " clients=" + std::to_string(num_clients) +
                 " chunk=" + std::to_string(options.chunk_size) +
                 " ws=" + std::to_string(options.work_stealing));
    FleetRun run = RunFleet(fx.ds, fx.registry, specs, fx.ds.records, options,
                            /*server_completion=*/true, num_loaders);
    ASSERT_TRUE(run.ok()) << run.send_status.ToString() << " / "
                          << run.load_status.ToString();

    // Loaded rows identical to the oracle — per-chunk masks + completion
    // make the per-record loading decision independent of which client
    // handled the chunk, how records were chunked, or who failed.
    EXPECT_EQ(run.load.records_in, fx.ds.records.size());
    EXPECT_EQ(run.load.records_loaded, oracle.load.records_loaded);
    EXPECT_EQ(run.load.records_sidelined, oracle.load.records_sidelined);
    EXPECT_EQ(run.prefilter.records_filtered, fx.ds.records.size());

    QueryExecutor executor(run.catalog.get(), &fx.registry);
    for (size_t i = 0; i < queries.size(); ++i) {
      auto result = executor.Execute(queries[i]);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->count, expected[i]) << queries[i].ToSql();
    }
  }
}

// ---------- Straggler absorption & failure injection ----------

TEST(FleetTest, WorkStealingAbsorbsStraggler) {
  MultiClientFixture fx;
  FleetOptions options;
  options.chunk_size = 20;  // 30 chunks
  FleetRun run = RunFleet(fx.ds, fx.registry,
                          {{"fast-0"},
                           {"fast-1"},
                           {"straggler", std::numeric_limits<double>::infinity(),
                            /*speed_factor=*/0.02}},
                          fx.ds.records, options, /*server_completion=*/true);
  ASSERT_TRUE(run.ok());
  const size_t num_chunks = (fx.ds.records.size() + 19) / 20;
  // The 50x straggler must end up with far less than its static third.
  EXPECT_LT(run.clients[2].chunks_processed, num_chunks / 3);
  EXPECT_GT(run.steals, 0u);
  EXPECT_EQ(run.load.records_in, fx.ds.records.size());
}

TEST(FleetTest, FailedClientsChunksAreAbsorbed) {
  MultiClientFixture fx;
  FleetRun oracle = RunOracle(fx.ds, fx.registry, fx.ds.records);
  for (const bool work_stealing : {true, false}) {
    SCOPED_TRACE(work_stealing ? "work-stealing" : "static");
    FleetOptions options;
    options.chunk_size = 10;  // 60 chunks: the flaky client WILL get work
    options.work_stealing = work_stealing;
    FleetRun run = RunFleet(
        fx.ds, fx.registry,
        {{"healthy"},
         {"flaky", std::numeric_limits<double>::infinity(),
          /*speed_factor=*/1.0, /*fail_after_chunks=*/2}},
        fx.ds.records, options, /*server_completion=*/true);
    ASSERT_TRUE(run.ok()) << run.send_status.ToString();
    // The injection caps the flaky client at 2 chunks. (Whether the
    // `failed` flag fired is a scheduling race — under starvation the
    // healthy client may drain everything first — so the invariants are
    // the cap and, below, zero data loss.)
    EXPECT_LE(run.clients[1].chunks_processed, 2u);
    // No chunk lost: every record arrived exactly once, loads match the
    // oracle.
    EXPECT_EQ(run.load.records_in, fx.ds.records.size());
    EXPECT_EQ(run.load.records_loaded, oracle.load.records_loaded);
  }
}

TEST(FleetTest, AllClientsFailingIsAnError) {
  MultiClientFixture fx;
  FleetOptions options;
  options.chunk_size = 50;
  FleetRun run = RunFleet(
      fx.ds, fx.registry,
      {{"dies-immediately", std::numeric_limits<double>::infinity(), 1.0,
        /*fail_after_chunks=*/0}},
      fx.ds.records, options, /*server_completion=*/true);
  EXPECT_FALSE(run.send_status.ok());
}

}  // namespace
}  // namespace ciao
