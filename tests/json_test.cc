#include <gtest/gtest.h>

#include "common/random.h"
#include "json/chunk.h"
#include "json/parser.h"
#include "json/value.h"
#include "json/writer.h"

namespace ciao::json {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
  EXPECT_TRUE(Value(int64_t{5}).is_number());
  EXPECT_TRUE(Value(2.5).is_number());
  EXPECT_EQ(Value(int64_t{5}).AsNumber(), 5.0);
  EXPECT_EQ(Value(2.5).AsNumber(), 2.5);
}

TEST(ValueTest, FindAndFindPath) {
  Value nested{Object{}};
  nested.Add("city", "springfield");
  Value rec{Object{}};
  rec.Add("name", "bob");
  rec.Add("address", std::move(nested));

  ASSERT_NE(rec.Find("name"), nullptr);
  EXPECT_EQ(rec.Find("name")->as_string(), "bob");
  EXPECT_EQ(rec.Find("missing"), nullptr);
  ASSERT_NE(rec.FindPath("address.city"), nullptr);
  EXPECT_EQ(rec.FindPath("address.city")->as_string(), "springfield");
  EXPECT_EQ(rec.FindPath("address.zip"), nullptr);
  EXPECT_EQ(rec.FindPath("name.x"), nullptr);  // name is not an object
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_EQ(Value(int64_t{2}), Value(int64_t{2}));
  EXPECT_FALSE(Value(int64_t{2}) == Value(2.0));
}

// ---------- Parser: scalars ----------

TEST(ParserTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_EQ(Parse("42")->as_int(), 42);
  EXPECT_EQ(Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Parse("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("-2.5e-2")->as_double(), -0.025);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(ParserTest, IntVsDoubleDiscrimination) {
  EXPECT_TRUE(Parse("7")->is_int());
  EXPECT_TRUE(Parse("7.0")->is_double());
  EXPECT_TRUE(Parse("7e0")->is_double());
  // int64 overflow falls back to double.
  EXPECT_TRUE(Parse("99999999999999999999")->is_double());
}

TEST(ParserTest, NumberEdgeCases) {
  EXPECT_EQ(Parse("0")->as_int(), 0);
  EXPECT_EQ(Parse("-0")->as_int(), 0);
  EXPECT_FALSE(Parse("01").ok());       // leading zero
  EXPECT_FALSE(Parse("1.").ok());       // digit required after '.'
  EXPECT_FALSE(Parse(".5").ok());       // must start with digit
  EXPECT_FALSE(Parse("1e").ok());       // digit required in exponent
  EXPECT_FALSE(Parse("+1").ok());       // no leading plus
  EXPECT_FALSE(Parse("1e999").ok());    // overflow to inf rejected
}

TEST(ParserTest, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b")")->as_string(), "a\"b");
  EXPECT_EQ(Parse(R"("a\\b")")->as_string(), "a\\b");
  EXPECT_EQ(Parse(R"("a\/b")")->as_string(), "a/b");
  EXPECT_EQ(Parse(R"("a\nb\tc\rd\be\ff")")->as_string(),
            "a\nb\tc\rd\be\ff");
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xC3\xA9");        // é
  EXPECT_EQ(Parse(R"("中")")->as_string(), "\xE4\xB8\xAD");    // 中
  // Surrogate pair -> U+1F600.
  EXPECT_EQ(Parse(R"("😀")")->as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(ParserTest, BadStrings) {
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("\"bad\\x\"").ok());
  EXPECT_FALSE(Parse("\"\\u12G4\"").ok());
  EXPECT_FALSE(Parse("\"\\ud83d\"").ok());          // unpaired high surrogate
  EXPECT_FALSE(Parse("\"\\ude00\"").ok());          // unpaired low surrogate
  EXPECT_FALSE(Parse("\"raw\nnewline\"").ok());     // control char
}

// ---------- Parser: composites ----------

TEST(ParserTest, ObjectsAndArrays) {
  auto v = Parse(R"({"a":1,"b":[true,null,"x"],"c":{"d":2.5}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->as_int(), 1);
  const Array& arr = v->Find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "x");
  EXPECT_DOUBLE_EQ(v->FindPath("c.d")->as_double(), 2.5);
}

TEST(ParserTest, WhitespaceTolerance) {
  auto v = Parse("  {  \"a\" :\t[ 1 , 2 ]\n}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->as_array().size(), 2u);
}

TEST(ParserTest, EmptyContainers) {
  EXPECT_TRUE(Parse("{}")->as_object().empty());
  EXPECT_TRUE(Parse("[]")->as_array().empty());
}

TEST(ParserTest, PreservesKeyOrder) {
  auto v = Parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.ok());
  const Object& obj = v->as_object();
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(ParserTest, MalformedComposites) {
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Parse("[1,2").ok());
  EXPECT_FALSE(Parse("[1 2]").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{1:2}").ok());
}

TEST(ParserTest, TrailingGarbageRejectedUnlessAllowed) {
  EXPECT_FALSE(Parse("1 2").ok());
  ParseOptions opts;
  opts.allow_trailing = true;
  EXPECT_TRUE(Parse("1 2", opts).ok());
}

TEST(ParserTest, DepthLimitGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(Parse(deep).ok());  // default max_depth 64
  ParseOptions opts;
  opts.max_depth = 200;
  EXPECT_TRUE(Parse(deep, opts).ok());
}

TEST(ParserTest, ErrorsCarryOffset) {
  auto r = Parse("{\"a\":tru}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, ParsePrefixReportsConsumed) {
  size_t consumed = 0;
  auto v = ParsePrefix("{\"a\":1}   trailing", &consumed);
  ASSERT_TRUE(v.ok());
  // Consumes the value plus trailing whitespace scan position.
  EXPECT_GE(consumed, 7u);
  EXPECT_EQ(v->Find("a")->as_int(), 1);
}

// ---------- Writer ----------

TEST(WriterTest, CompactCanonicalForm) {
  Value rec{Object{}};
  rec.Add("name", "Bob");
  rec.Add("age", int64_t{22});
  rec.Add("tags", Value(Array{Value("a"), Value(int64_t{1})}));
  EXPECT_EQ(Write(rec), R"({"name":"Bob","age":22,"tags":["a",1]})");
}

TEST(WriterTest, Escaping) {
  EXPECT_EQ(Write(Value("a\"b\\c\nd")), R"("a\"b\\c\nd")");
  EXPECT_EQ(Write(Value(std::string("ctrl\x01"))), "\"ctrl\\u0001\"");
}

TEST(WriterTest, Scalars) {
  EXPECT_EQ(Write(Value()), "null");
  EXPECT_EQ(Write(Value(true)), "true");
  EXPECT_EQ(Write(Value(int64_t{-5})), "-5");
  EXPECT_EQ(Write(Value(2.5)), "2.5");
  // Integral doubles keep a ".0" so the int/double distinction survives
  // a round trip.
  EXPECT_EQ(Write(Value(34.0)), "34.0");
  EXPECT_TRUE(Parse(Write(Value(34.0)))->is_double());
}

TEST(WriterTest, RoundTripRandomValues) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    Value rec{Object{}};
    rec.Add("i", rng.NextInt(-1000000, 1000000));
    rec.Add("b", rng.NextBool());
    rec.Add("s", rng.NextIdentifier(static_cast<int>(rng.NextInt(0, 20))));
    rec.Add("d", static_cast<double>(rng.NextInt(-1000, 1000)) / 8.0);
    Array arr;
    for (int i = 0; i < 3; ++i) arr.emplace_back(rng.NextInt(0, 9));
    rec.Add("arr", Value(std::move(arr)));

    const std::string text = Write(rec);
    auto parsed = Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(*parsed, rec) << text;
    EXPECT_EQ(Write(*parsed), text);
  }
}

TEST(WriterTest, RoundTripEscapedStrings) {
  const std::string nasty = "q\"w\\e\nr\tt\x01 y\xC3\xA9z";
  const std::string text = Write(Value(nasty));
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), nasty);
}

// ---------- JsonChunk ----------

TEST(ChunkTest, AppendAndIndex) {
  JsonChunk chunk;
  chunk.AppendSerialized(R"({"a":1})");
  chunk.AppendSerialized(R"({"b":2})");
  Value v{Object{}};
  v.Add("c", int64_t{3});
  chunk.AppendValue(v);

  ASSERT_EQ(chunk.size(), 3u);
  EXPECT_EQ(chunk.Record(0), R"({"a":1})");
  EXPECT_EQ(chunk.Record(2), R"({"c":3})");
  EXPECT_EQ(chunk.data().back(), '\n');
  EXPECT_GT(chunk.MeanRecordLength(), 0.0);
}

TEST(ChunkTest, NdjsonRoundTrip) {
  JsonChunk chunk;
  chunk.AppendSerialized(R"({"a":1})");
  chunk.AppendSerialized(R"({"b":"x"})");
  auto decoded = JsonChunk::FromNdjson(chunk.data());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ(decoded->Record(0), chunk.Record(0));
  EXPECT_EQ(decoded->Record(1), chunk.Record(1));
}

TEST(ChunkTest, NdjsonRejectsUnterminated) {
  EXPECT_FALSE(JsonChunk::FromNdjson("{\"a\":1}").ok());
  EXPECT_TRUE(JsonChunk::FromNdjson("").ok());
}

TEST(ChunkTest, SplitIntoChunks) {
  std::vector<std::string> records;
  for (int i = 0; i < 10; ++i) records.push_back("{\"i\":" + std::to_string(i) + "}");
  const auto chunks = SplitIntoChunks(records, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size(), 4u);
  EXPECT_EQ(chunks[2].size(), 2u);
  EXPECT_EQ(chunks[2].Record(1), records[9]);
  // chunk_size 0 coerced to 1.
  EXPECT_EQ(SplitIntoChunks(records, 0).size(), 10u);
}

TEST(ChunkTest, EmptyChunk) {
  JsonChunk chunk;
  EXPECT_TRUE(chunk.empty());
  EXPECT_EQ(chunk.MeanRecordLength(), 0.0);
  EXPECT_EQ(chunk.ByteSize(), 0u);
}

}  // namespace
}  // namespace ciao::json
