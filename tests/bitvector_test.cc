#include <gtest/gtest.h>

#include "bitvec/bitvector.h"
#include "bitvec/bitvector_set.h"
#include "common/random.h"

namespace ciao {
namespace {

TEST(BitVectorTest, ConstructionAndBasicOps) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.Any());
  v.Set(0, true);
  v.Set(64, true);
  v.Set(129, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_FALSE(v.Get(1));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_EQ(v.CountOnes(), 3u);
  v.Set(64, false);
  EXPECT_EQ(v.CountOnes(), 2u);
}

TEST(BitVectorTest, AllOnesConstruction) {
  BitVector v(70, true);
  EXPECT_EQ(v.CountOnes(), 70u);
  EXPECT_TRUE(v.All());
  EXPECT_TRUE(v.Any());
}

TEST(BitVectorTest, PushBack) {
  BitVector v;
  for (int i = 0; i < 200; ++i) v.PushBack(i % 3 == 0);
  EXPECT_EQ(v.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v.Get(i), i % 3 == 0);
}

TEST(BitVectorTest, Rank) {
  BitVector v(100);
  for (size_t i = 0; i < 100; i += 2) v.Set(i, true);
  EXPECT_EQ(v.Rank(0), 0u);
  EXPECT_EQ(v.Rank(1), 1u);
  EXPECT_EQ(v.Rank(10), 5u);
  EXPECT_EQ(v.Rank(100), 50u);
  EXPECT_EQ(v.Rank(1000), 50u);  // clamped
}

TEST(BitVectorTest, AndOrNegate) {
  BitVector a(80), b(80);
  a.Set(3, true);
  a.Set(40, true);
  b.Set(40, true);
  b.Set(70, true);

  BitVector and_v = a;
  ASSERT_TRUE(and_v.AndWith(b).ok());
  EXPECT_EQ(and_v.CountOnes(), 1u);
  EXPECT_TRUE(and_v.Get(40));

  BitVector or_v = a;
  ASSERT_TRUE(or_v.OrWith(b).ok());
  EXPECT_EQ(or_v.CountOnes(), 3u);

  BitVector not_v = a;
  not_v.Negate();
  EXPECT_EQ(not_v.CountOnes(), 78u);
  EXPECT_FALSE(not_v.Get(3));
  EXPECT_TRUE(not_v.Get(4));
}

TEST(BitVectorTest, SizeMismatchErrors) {
  BitVector a(10), b(11);
  EXPECT_TRUE(a.AndWith(b).IsInvalidArgument());
  EXPECT_TRUE(a.OrWith(b).IsInvalidArgument());
  EXPECT_TRUE(a.CompactBy(b).status().IsInvalidArgument());
}

TEST(BitVectorTest, SetBits) {
  BitVector v(130);
  v.Set(0, true);
  v.Set(65, true);
  v.Set(129, true);
  const auto bits = v.SetBits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 0u);
  EXPECT_EQ(bits[1], 65u);
  EXPECT_EQ(bits[2], 129u);
}

TEST(BitVectorTest, CompactBy) {
  BitVector values(6), mask(6);
  // values: 1 0 1 1 0 1 ; mask keeps indices 0, 2, 4.
  values.Set(0, true);
  values.Set(2, true);
  values.Set(3, true);
  values.Set(5, true);
  mask.Set(0, true);
  mask.Set(2, true);
  mask.Set(4, true);
  auto compacted = values.CompactBy(mask);
  ASSERT_TRUE(compacted.ok());
  ASSERT_EQ(compacted->size(), 3u);
  EXPECT_TRUE(compacted->Get(0));   // values[0]
  EXPECT_TRUE(compacted->Get(1));   // values[2]
  EXPECT_FALSE(compacted->Get(2));  // values[4]
}

TEST(BitVectorTest, SerializeRoundTrip) {
  Rng rng(5);
  for (const size_t n : {0u, 1u, 63u, 64u, 65u, 300u}) {
    BitVector v(n);
    for (size_t i = 0; i < n; ++i) v.Set(i, rng.NextBool());
    std::string buf;
    v.SerializeTo(&buf);
    EXPECT_EQ(buf.size(), BitVector::SerializedBytes(n));
    size_t offset = 0;
    auto decoded = BitVector::Deserialize(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(offset, buf.size());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(BitVectorTest, DeserializeTruncatedFails) {
  BitVector v(100, true);
  std::string buf;
  v.SerializeTo(&buf);
  size_t offset = 0;
  auto r = BitVector::Deserialize(buf.substr(0, buf.size() - 1), &offset);
  EXPECT_TRUE(r.status().IsCorruption());
  offset = 0;
  EXPECT_TRUE(BitVector::Deserialize("abc", &offset).status().IsCorruption());
}

TEST(BitVectorTest, DeserializeRejectsPaddingGarbage) {
  BitVector v(4);  // one word, 4 declared bits
  std::string buf;
  v.SerializeTo(&buf);
  buf[9] = '\xFF';  // set bits beyond the declared size
  size_t offset = 0;
  EXPECT_TRUE(BitVector::Deserialize(buf, &offset).status().IsCorruption());
}

TEST(BitVectorTest, IntersectAll) {
  BitVector a(8, true), b(8, true), c(8, true);
  b.Set(3, false);
  c.Set(5, false);
  auto r = BitVector::IntersectAll({&a, &b, &c});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->CountOnes(), 6u);
  EXPECT_FALSE(r->Get(3));
  EXPECT_FALSE(r->Get(5));
  EXPECT_TRUE(BitVector::IntersectAll({}).status().IsInvalidArgument());
}

// Property: ops agree with a naive bool-vector reference model.
TEST(BitVectorTest, PropertyAgainstReferenceModel) {
  Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = 1 + rng.NextBounded(200);
    std::vector<bool> ref_a(n), ref_b(n);
    BitVector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      ref_a[i] = rng.NextBool();
      ref_b[i] = rng.NextBool();
      a.Set(i, ref_a[i]);
      b.Set(i, ref_b[i]);
    }
    size_t expected_ones = 0;
    for (size_t i = 0; i < n; ++i) expected_ones += ref_a[i] ? 1 : 0;
    EXPECT_EQ(a.CountOnes(), expected_ones);

    BitVector and_v = a;
    ASSERT_TRUE(and_v.AndWith(b).ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(and_v.Get(i), ref_a[i] && ref_b[i]);
    }
    const size_t prefix = rng.NextBounded(n + 1);
    size_t expected_rank = 0;
    for (size_t i = 0; i < prefix; ++i) expected_rank += ref_a[i] ? 1 : 0;
    EXPECT_EQ(a.Rank(prefix), expected_rank);
  }
}

// ---------- BitVectorSet ----------

TEST(BitVectorSetTest, UnionAndIntersect) {
  BitVectorSet set(3, 10);
  set.mutable_vector(0)->Set(1, true);
  set.mutable_vector(1)->Set(1, true);
  set.mutable_vector(1)->Set(5, true);
  set.mutable_vector(2)->Set(9, true);

  const BitVector u = set.UnionAll();
  EXPECT_EQ(u.CountOnes(), 3u);  // rows 1, 5, 9

  auto both = set.Intersect({0, 1});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->CountOnes(), 1u);
  EXPECT_TRUE(both->Get(1));

  EXPECT_TRUE(set.Intersect({}).status().IsInvalidArgument());
  EXPECT_TRUE(set.Intersect({7}).status().IsOutOfRange());
}

TEST(BitVectorSetTest, EmptySetUnion) {
  BitVectorSet empty;
  EXPECT_EQ(empty.UnionAll().size(), 0u);
  EXPECT_EQ(empty.num_predicates(), 0u);
  EXPECT_EQ(empty.num_records(), 0u);
}

TEST(BitVectorSetTest, CompactBy) {
  BitVectorSet set(2, 4);
  set.mutable_vector(0)->Set(0, true);
  set.mutable_vector(0)->Set(2, true);
  set.mutable_vector(1)->Set(3, true);
  BitVector mask(4);
  mask.Set(0, true);
  mask.Set(3, true);
  auto compacted = set.CompactBy(mask);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->num_records(), 2u);
  EXPECT_TRUE(compacted->vector(0).Get(0));
  EXPECT_FALSE(compacted->vector(0).Get(1));
  EXPECT_FALSE(compacted->vector(1).Get(0));
  EXPECT_TRUE(compacted->vector(1).Get(1));
}

TEST(BitVectorSetTest, SerializeRoundTrip) {
  Rng rng(7);
  BitVectorSet set(4, 77);
  for (size_t p = 0; p < 4; ++p) {
    for (size_t r = 0; r < 77; ++r) {
      set.mutable_vector(p)->Set(r, rng.NextBool());
    }
  }
  std::string buf;
  set.SerializeTo(&buf);
  size_t offset = 0;
  auto decoded = BitVectorSet::Deserialize(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(*decoded, set);
}

TEST(BitVectorSetTest, DeserializeTruncatedFails) {
  BitVectorSet set(2, 100);
  std::string buf;
  set.SerializeTo(&buf);
  size_t offset = 0;
  EXPECT_TRUE(BitVectorSet::Deserialize(buf.substr(0, 10), &offset)
                  .status()
                  .IsCorruption());
}

// The lazy view must agree bit-for-bit with eager deserialization for
// every vector and every intersection — it is the executor's per-query
// replacement for materializing all annotations (sizes straddle word
// boundaries on purpose).
TEST(BitVectorSetViewTest, AgreesWithEagerDeserialize) {
  Rng rng(21);
  for (const size_t records : {1u, 63u, 64u, 65u, 200u}) {
    BitVectorSet set(5, records);
    for (size_t p = 0; p < 5; ++p) {
      for (size_t r = 0; r < records; ++r) {
        set.mutable_vector(p)->Set(r, rng.NextBool());
      }
    }
    std::string buf;
    set.SerializeTo(&buf);

    size_t offset = 0;
    auto view = BitVectorSetView::Parse(buf, &offset);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(offset, buf.size());  // parse skips past the whole set
    EXPECT_EQ(view->num_predicates(), 5u);
    EXPECT_EQ(view->num_records(), records);

    for (uint32_t p = 0; p < 5; ++p) {
      auto v = view->Get(p);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, set.vector(p)) << "records=" << records << " p=" << p;
    }
    const std::vector<uint32_t> ids = {0, 2, 4};
    auto lazy = view->Intersect(ids);
    auto eager = set.Intersect(ids);
    ASSERT_TRUE(lazy.ok() && eager.ok());
    EXPECT_EQ(*lazy, *eager);

    EXPECT_TRUE(view->Get(5).status().IsOutOfRange());
    EXPECT_TRUE(view->Intersect({}).status().IsInvalidArgument());
  }
}

TEST(BitVectorSetViewTest, EmptySetAndTruncationFail) {
  BitVectorSet empty;
  std::string buf;
  empty.SerializeTo(&buf);
  size_t offset = 0;
  auto view = BitVectorSetView::Parse(buf, &offset);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_predicates(), 0u);
  EXPECT_EQ(view->num_records(), 0u);

  BitVectorSet set(2, 100);
  std::string full;
  set.SerializeTo(&full);
  offset = 0;
  EXPECT_TRUE(BitVectorSetView::Parse(full.substr(0, 10), &offset)
                  .status()
                  .IsCorruption());
  // Cutting into the last vector's payload must fail at Parse, before any
  // Get — the view bounds-checks the whole span up front.
  offset = 0;
  EXPECT_TRUE(BitVectorSetView::Parse(full.substr(0, full.size() - 4), &offset)
                  .status()
                  .IsCorruption());
}

// Tail-word and padding edges of the word-at-a-time kernels: sizes
// straddling the 64-bit word boundary, bits in the partial last word, and
// padding that must stay zero through every word-level operation.
TEST(BitVectorWordOpsTest, WordAccessorsAndPadding) {
  for (const size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    BitVector v(n);
    EXPECT_EQ(v.num_words(), (n + 63) / 64);
    v.Set(n - 1, true);
    EXPECT_EQ(v.CountOnes(), 1u);
    // OrWord on the last word with an in-range bit.
    v.OrWord(v.num_words() - 1, 1ULL << ((n - 1) & 63));
    EXPECT_EQ(v.CountOnes(), 1u);
    // Negate must keep padding clean so SetBits never reports a
    // past-the-end index.
    v.Negate();
    const std::vector<uint32_t> bits = v.SetBits();
    EXPECT_EQ(bits.size(), n - 1);
    for (const uint32_t b : bits) EXPECT_LT(b, n);
  }
}

TEST(BitVectorWordOpsTest, UnionAllTailWords) {
  for (const size_t n : {1u, 63u, 64u, 65u, 130u}) {
    BitVectorSet set(3, n);
    // Distinct bits per vector, including the very last record.
    set.mutable_vector(0)->Set(0, true);
    set.mutable_vector(1)->Set(n / 2, true);
    set.mutable_vector(2)->Set(n - 1, true);
    const BitVector u = set.UnionAll();
    EXPECT_EQ(u.size(), n);
    EXPECT_TRUE(u.Get(0));
    EXPECT_TRUE(u.Get(n / 2));
    EXPECT_TRUE(u.Get(n - 1));
    // Union of all-ones stays clean in the padded tail: negating twice
    // round-trips only if no padding bit leaked.
    size_t expected = 3;
    if (n / 2 == 0) --expected;
    if (n - 1 == n / 2) --expected;
    EXPECT_EQ(u.CountOnes(), expected);
  }
}

TEST(BitVectorWordOpsTest, CompactByTailWords) {
  // Mask straddling word boundaries; compaction output lands in a
  // smaller word count and must preserve order.
  for (const size_t n : {64u, 65u, 129u}) {
    BitVector data(n), mask(n);
    for (size_t i = 0; i < n; i += 2) mask.Set(i, true);
    for (size_t i = 0; i < n; i += 4) data.Set(i, true);
    auto compacted = data.CompactBy(mask);
    ASSERT_TRUE(compacted.ok());
    EXPECT_EQ(compacted->size(), mask.CountOnes());
    // Every second surviving position is set (i % 4 == 0 among i % 2 == 0).
    for (size_t j = 0; j < compacted->size(); ++j) {
      EXPECT_EQ(compacted->Get(j), j % 2 == 0) << "n=" << n << " j=" << j;
    }
  }
  // Empty mask -> empty output; full mask -> identity.
  BitVector data(70);
  data.Set(69, true);
  EXPECT_EQ(data.CompactBy(BitVector(70))->size(), 0u);
  EXPECT_EQ(*data.CompactBy(BitVector(70, true)), data);
}

}  // namespace
}  // namespace ciao
