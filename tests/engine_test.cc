#include <gtest/gtest.h>

#include <limits>

#include "columnar/file_writer.h"
#include "common/random.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "engine/typed_eval.h"
#include "engine/zone_map_filter.h"
#include "columnar/json_converter.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/partial_loader.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

// ---------- CompiledTypedQuery vs. semantic evaluation ----------

// Property: typed evaluation over loaded columnar data agrees with
// semantic evaluation over the original JSON for schema-conformant
// records — the invariant that makes verify-after-skip correct.
TEST(TypedEvalTest, AgreesWithSemanticEvalOnGeneratedData) {
  for (const auto kind :
       {workload::DatasetKind::kYelp, workload::DatasetKind::kWinLog,
        workload::DatasetKind::kYcsb}) {
    workload::GeneratorOptions opt;
    opt.num_records = 300;
    opt.seed = 7;
    const workload::Dataset ds = workload::GenerateDataset(kind, opt);

    // Load everything into one batch.
    columnar::BatchBuilder builder(ds.schema);
    std::vector<json::Value> parsed;
    for (const std::string& r : ds.records) {
      auto v = json::Parse(r);
      ASSERT_TRUE(v.ok());
      builder.AppendParsed(*v);
      parsed.push_back(std::move(v).value());
    }
    ASSERT_EQ(builder.coercion_errors(), 0u);
    const columnar::RecordBatch batch = builder.Finish();

    // Queries of 1-3 random template predicates.
    const auto pool = workload::TemplatesFor(kind).AllCandidates();
    Rng rng(13);
    for (int iter = 0; iter < 40; ++iter) {
      Query q;
      const size_t n_clauses = 1 + rng.NextBounded(3);
      for (size_t c = 0; c < n_clauses; ++c) {
        q.clauses.push_back(pool[rng.NextBounded(pool.size())]);
      }
      auto compiled = CompiledTypedQuery::Compile(q, ds.schema);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        const bool typed = compiled->Matches(batch, r);
        const bool semantic = EvaluateQuery(q, parsed[r]);
        ASSERT_EQ(typed, semantic)
            << ds.name << " row " << r << " query " << q.ToSql();
      }
    }
  }
}

TEST(TypedEvalTest, MissingFieldIsCompileError) {
  columnar::Schema schema({{"a", columnar::ColumnType::kInt64}});
  Query q;
  q.clauses.push_back(Clause::Of(SimplePredicate::KeyValue("ghost", 1)));
  EXPECT_TRUE(
      CompiledTypedQuery::Compile(q, schema).status().IsInvalidArgument());
}

TEST(TypedEvalTest, NullNeverMatchesExceptAbsencePredicates) {
  columnar::Schema schema({{"s", columnar::ColumnType::kString}});
  columnar::RecordBatch batch(schema);
  batch.mutable_column(0)->AppendNull();
  batch.mutable_column(0)->AppendString("x");

  Query presence;
  presence.clauses.push_back(Clause::Of(SimplePredicate::Presence("s")));
  auto cp = CompiledTypedQuery::Compile(presence, schema);
  EXPECT_FALSE(cp->Matches(batch, 0));
  EXPECT_TRUE(cp->Matches(batch, 1));

  Query exact;
  exact.clauses.push_back(Clause::Of(SimplePredicate::Exact("s", "x")));
  auto ce = CompiledTypedQuery::Compile(exact, schema);
  EXPECT_FALSE(ce->Matches(batch, 0));
  EXPECT_TRUE(ce->Matches(batch, 1));
}

TEST(TypedEvalTest, RangePredicateOnNumericColumns) {
  columnar::Schema schema({{"i", columnar::ColumnType::kInt64},
                           {"d", columnar::ColumnType::kDouble}});
  columnar::RecordBatch batch(schema);
  batch.mutable_column(0)->AppendInt64(5);
  batch.mutable_column(1)->AppendDouble(2.5);

  Query q;
  q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("i", 6)));
  q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("d", 2.6)));
  auto c = CompiledTypedQuery::Compile(q, schema);
  EXPECT_TRUE(c->Matches(batch, 0));

  Query q2;
  q2.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("i", 5)));
  EXPECT_FALSE(CompiledTypedQuery::Compile(q2, schema)->Matches(batch, 0));
}

// ---------- Planner ----------

TEST(PlannerTest, SkippingIffAnyClausePushedDown) {
  PredicateRegistry registry;
  Clause pushed = Clause::Of(SimplePredicate::KeyValue("a", 1));
  Clause other = Clause::Of(SimplePredicate::KeyValue("b", 2));
  ASSERT_TRUE(registry.Register(pushed, 0.1, 1.0).ok());

  Query with_pushed;
  with_pushed.clauses = {pushed, other};
  const PlanDecision d1 = PlanQuery(with_pushed, registry);
  EXPECT_EQ(d1.kind, PlanKind::kSkippingScan);
  EXPECT_EQ(d1.predicate_ids, std::vector<uint32_t>{0});

  Query without;
  without.clauses = {other};
  const PlanDecision d2 = PlanQuery(without, registry);
  EXPECT_EQ(d2.kind, PlanKind::kFullScan);
  EXPECT_TRUE(d2.predicate_ids.empty());
}

// ---------- Executor: a full mini pipeline ----------

struct EngineFixture {
  workload::Dataset ds;
  std::vector<json::Value> parsed;
  PredicateRegistry registry;
  TableCatalog catalog;
  std::vector<Clause> pushed;

  explicit EngineFixture(size_t n = 400, bool partial = true)
      : ds(workload::GenerateWinLog({n, 21})), catalog(ds.schema) {
    for (const std::string& r : ds.records) {
      parsed.push_back(*json::Parse(r));
    }
    // Push two micro-tier predicates (sel 0.35 each).
    pushed = workload::MicroTierPredicates(0.35);
    pushed.resize(2);
    for (const Clause& c : pushed) {
      EXPECT_TRUE(registry.Register(c, 0.35, 1.0).ok());
    }
    // Annotate + load in 3 chunks.
    PartialLoader loader(ds.schema, registry.size());
    LoadStats stats;
    const size_t chunk_size = 150;
    for (size_t start = 0; start < ds.records.size(); start += chunk_size) {
      json::JsonChunk chunk;
      const size_t end = std::min(ds.records.size(), start + chunk_size);
      for (size_t i = start; i < end; ++i) {
        chunk.AppendSerialized(ds.records[i]);
      }
      BitVectorSet annotations(registry.size(), chunk.size());
      for (size_t p = 0; p < registry.size(); ++p) {
        const auto& program = registry.Get(static_cast<uint32_t>(p)).program;
        for (size_t r = 0; r < chunk.size(); ++r) {
          if (program.Matches(chunk.Record(r))) {
            annotations.mutable_vector(p)->Set(r, true);
          }
        }
      }
      EXPECT_TRUE(
          loader.IngestChunk(chunk, annotations, partial, &catalog, &stats)
              .ok());
    }
  }

  uint64_t BruteForceCount(const Query& q) const {
    uint64_t count = 0;
    for (const json::Value& v : parsed) {
      if (EvaluateQuery(q, v)) ++count;
    }
    return count;
  }
};

TEST(ExecutorTest, FullScanMatchesBruteForce) {
  EngineFixture fx(400, /*partial=*/false);
  QueryExecutor executor(&fx.catalog, &fx.registry);
  Rng rng(23);
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  for (int iter = 0; iter < 20; ++iter) {
    Query q;
    q.clauses.push_back(pool[rng.NextBounded(pool.size())]);
    if (rng.NextBool()) q.clauses.push_back(pool[rng.NextBounded(pool.size())]);
    auto result = executor.ExecuteFullScan(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, fx.BruteForceCount(q)) << q.ToSql();
    EXPECT_EQ(result->plan, PlanKind::kFullScan);
    EXPECT_EQ(result->stats.rows_evaluated, 400u);
  }
}

TEST(ExecutorTest, SkippingScanMatchesFullScanAndBruteForce) {
  EngineFixture fx(400, /*partial=*/true);
  QueryExecutor executor(&fx.catalog, &fx.registry);
  const auto other = workload::MicroTierPredicates(0.15);

  // Queries containing pushed clause(s) — the skipping-eligible shape.
  std::vector<Query> queries;
  {
    Query q;  // pushed[0] alone
    q.clauses = {fx.pushed[0]};
    queries.push_back(q);
  }
  {
    Query q;  // pushed[0] AND pushed[1]
    q.clauses = {fx.pushed[0], fx.pushed[1]};
    queries.push_back(q);
  }
  {
    Query q;  // pushed[1] AND a non-pushed clause
    q.clauses = {fx.pushed[1], other[0]};
    queries.push_back(q);
  }

  for (const Query& q : queries) {
    auto planned = executor.Execute(q);
    ASSERT_TRUE(planned.ok());
    EXPECT_EQ(planned->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(planned->count, fx.BruteForceCount(q)) << q.ToSql();
    EXPECT_GT(planned->stats.rows_skipped, 0u);
  }
}

TEST(ExecutorTest, FullScanCoversRawSideline) {
  EngineFixture fx(400, /*partial=*/true);
  ASSERT_GT(fx.catalog.raw_rows(), 0u);
  QueryExecutor executor(&fx.catalog, &fx.registry);

  // A query with NO pushed-down clause must fall back to full scan and
  // still count records hiding in the raw sideline.
  const auto other = workload::MicroTierPredicates(0.15);
  Query q;
  q.clauses = {other[3]};
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kFullScan);
  EXPECT_EQ(result->count, fx.BruteForceCount(q));
  EXPECT_GT(result->stats.raw_records_scanned, 0u);
}

TEST(ExecutorTest, GroupSkippingTriggersOnImpossiblePredicates) {
  // A registry predicate that matches nothing: every group's intersected
  // bitvector is all-zero, so all groups are skipped without decode.
  workload::Dataset ds = workload::GenerateWinLog({200, 31});
  PredicateRegistry registry;
  Clause impossible =
      Clause::Of(SimplePredicate::Substring("info", "zzz_never_zzz"));
  ASSERT_TRUE(registry.Register(impossible, 0.0, 1.0).ok());

  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, 1);
  LoadStats stats;
  json::JsonChunk chunk;
  for (const auto& r : ds.records) chunk.AppendSerialized(r);
  // Partial loading off: everything loaded, all bits zero.
  ASSERT_TRUE(loader
                  .IngestChunk(chunk, BitVectorSet(1, chunk.size()),
                               /*partial_loading_enabled=*/false, &catalog,
                               &stats)
                  .ok());

  QueryExecutor executor(&catalog, &registry);
  Query q;
  q.clauses = {impossible};
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
  EXPECT_EQ(result->count, 0u);
  EXPECT_EQ(result->stats.groups_skipped, 1u);
  EXPECT_EQ(result->stats.groups_scanned, 0u);
  EXPECT_EQ(result->stats.rows_evaluated, 0u);
  EXPECT_EQ(result->stats.rows_skipped, 200u);
}

// ---------- Zone-map skipping (classic data-skipping baseline) ----------

TEST(ZoneMapFilterTest, NumericPruning) {
  columnar::Schema schema({{"id", columnar::ColumnType::kInt64},
                           {"tag", columnar::ColumnType::kString}});
  std::vector<columnar::ZoneMap> zms(2);
  zms[0].has_minmax = true;
  zms[0].min = 100;
  zms[0].max = 199;
  zms[0].null_count = 0;
  zms[1].null_count = 0;

  Query inside;
  inside.clauses = {Clause::Of(SimplePredicate::KeyValue("id", 150))};
  EXPECT_TRUE(ZoneMapsMaySatisfy(inside, schema, zms, 100));

  Query below;
  below.clauses = {Clause::Of(SimplePredicate::KeyValue("id", 50))};
  EXPECT_FALSE(ZoneMapsMaySatisfy(below, schema, zms, 100));

  Query above;
  above.clauses = {Clause::Of(SimplePredicate::KeyValue("id", 500))};
  EXPECT_FALSE(ZoneMapsMaySatisfy(above, schema, zms, 100));

  // Range-less: min >= bound proves empty.
  Query range_empty;
  range_empty.clauses = {Clause::Of(SimplePredicate::RangeLess("id", 100))};
  EXPECT_FALSE(ZoneMapsMaySatisfy(range_empty, schema, zms, 100));
  Query range_ok;
  range_ok.clauses = {Clause::Of(SimplePredicate::RangeLess("id", 101))};
  EXPECT_TRUE(ZoneMapsMaySatisfy(range_ok, schema, zms, 100));

  // Disjunction: only empty if ALL terms are provably empty.
  Query disj;
  disj.clauses = {Clause::Or({SimplePredicate::KeyValue("id", 50),
                              SimplePredicate::KeyValue("id", 150)})};
  EXPECT_TRUE(ZoneMapsMaySatisfy(disj, schema, zms, 100));
  Query disj_empty;
  disj_empty.clauses = {Clause::Or({SimplePredicate::KeyValue("id", 50),
                                    SimplePredicate::KeyValue("id", 999)})};
  EXPECT_FALSE(ZoneMapsMaySatisfy(disj_empty, schema, zms, 100));

  // String columns have no min/max: never pruned.
  Query str;
  str.clauses = {Clause::Of(SimplePredicate::Exact("tag", "zzz"))};
  EXPECT_TRUE(ZoneMapsMaySatisfy(str, schema, zms, 100));

  // All-null columns report "maybe": block statistics carry no min/max
  // evidence for them, and null-vs-missing semantics belong to the
  // evaluator, never to the pruning filter.
  std::vector<columnar::ZoneMap> all_null = zms;
  all_null[1].null_count = 100;
  Query presence;
  presence.clauses = {Clause::Of(SimplePredicate::Presence("tag"))};
  EXPECT_TRUE(ZoneMapsMaySatisfy(presence, schema, all_null, 100));

  // Empty group satisfies nothing.
  EXPECT_FALSE(ZoneMapsMaySatisfy(inside, schema, zms, 0));
}

TEST(ZoneMapFilterTest, AllNullAndNanColumnsReportMaybe) {
  columnar::Schema schema({{"score", columnar::ColumnType::kDouble}});

  // All-null numeric column: no minmax is ever computed, so every
  // predicate kind must come back "maybe".
  std::vector<columnar::ZoneMap> all_null(1);
  all_null[0].null_count = 64;
  Query value;
  value.clauses = {Clause::Of(SimplePredicate::KeyValue("score", 3))};
  Query range;
  range.clauses = {Clause::Of(SimplePredicate::RangeLess("score", 3))};
  Query presence;
  presence.clauses = {Clause::Of(SimplePredicate::Presence("score"))};
  EXPECT_TRUE(ZoneMapsMaySatisfy(value, schema, all_null, 64));
  EXPECT_TRUE(ZoneMapsMaySatisfy(range, schema, all_null, 64));
  EXPECT_TRUE(ZoneMapsMaySatisfy(presence, schema, all_null, 64));

  // NaN-poisoned minmax (legacy bytes written before the writer withheld
  // ranges from NaN-containing columns): unordered bounds prove nothing.
  std::vector<columnar::ZoneMap> nan_range(1);
  nan_range[0].has_minmax = true;
  nan_range[0].min = std::numeric_limits<double>::quiet_NaN();
  nan_range[0].max = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ZoneMapsMaySatisfy(value, schema, nan_range, 64));
  EXPECT_TRUE(ZoneMapsMaySatisfy(range, schema, nan_range, 64));
}

TEST(ZoneMapFilterTest, ComputeZoneMapsWithholdsRangeFromNanColumns) {
  columnar::Schema schema({{"score", columnar::ColumnType::kDouble}});
  columnar::RecordBatch batch(schema);
  columnar::ColumnVector* col = batch.mutable_column(0);
  // NaN first would poison a naive running min/max; NaN in the middle
  // used to be silently skipped. Both must now disable the range.
  col->AppendDouble(std::numeric_limits<double>::quiet_NaN());
  col->AppendDouble(5.0);
  col->AppendDouble(100.0);
  const std::vector<columnar::ZoneMap> maps = columnar::ComputeZoneMaps(batch);
  ASSERT_EQ(maps.size(), 1u);
  EXPECT_FALSE(maps[0].has_minmax);

  columnar::RecordBatch middle(schema);
  columnar::ColumnVector* col2 = middle.mutable_column(0);
  col2->AppendDouble(5.0);
  col2->AppendDouble(std::numeric_limits<double>::quiet_NaN());
  col2->AppendDouble(100.0);
  const std::vector<columnar::ZoneMap> maps2 =
      columnar::ComputeZoneMaps(middle);
  EXPECT_FALSE(maps2[0].has_minmax);

  // NaN-free columns keep their range.
  columnar::RecordBatch clean(schema);
  columnar::ColumnVector* col3 = clean.mutable_column(0);
  col3->AppendDouble(5.0);
  col3->AppendNull();
  col3->AppendDouble(100.0);
  const std::vector<columnar::ZoneMap> maps3 =
      columnar::ComputeZoneMaps(clean);
  ASSERT_TRUE(maps3[0].has_minmax);
  EXPECT_EQ(maps3[0].min, 5.0);
  EXPECT_EQ(maps3[0].max, 100.0);
  EXPECT_EQ(maps3[0].null_count, 1u);
}

TEST(ExecutorTest, NanAndNullColumnsAgreeWithOracleUnderZoneMaps) {
  // End-to-end pin of the NaN/null semantics: a table whose double
  // column holds NaN, nulls, and ordinary values must produce identical
  // counts with zone maps on and off, under both evaluation modes.
  columnar::Schema schema({{"id", columnar::ColumnType::kInt64},
                           {"score", columnar::ColumnType::kDouble}});
  PredicateRegistry registry;
  TableCatalog catalog(schema);
  columnar::TableWriter writer(schema);
  columnar::RecordBatch batch(schema);
  uint64_t rows = 0;
  for (int g = 0; g < 3; ++g) {
    columnar::RecordBatch group(schema);
    for (int r = 0; r < 50; ++r) {
      group.mutable_column(0)->AppendInt64(g * 50 + r);
      if (r % 7 == 0) {
        group.mutable_column(1)->AppendNull();
      } else if (r % 11 == 0) {
        group.mutable_column(1)->AppendDouble(
            std::numeric_limits<double>::quiet_NaN());
      } else {
        group.mutable_column(1)->AppendDouble(r * 1.5);
      }
      ++rows;
    }
    ASSERT_TRUE(writer.AppendRowGroup(group, BitVectorSet()).ok());
  }
  catalog.AddSegment(std::move(writer).Finish(), rows);

  std::vector<Query> queries(3);
  queries[0].clauses = {Clause::Of(SimplePredicate::KeyValue("score", 6))};
  queries[1].clauses = {Clause::Of(SimplePredicate::RangeLess("score", 10))};
  queries[2].clauses = {Clause::Of(SimplePredicate::Presence("score"))};
  for (const QueryEvalMode mode :
       {QueryEvalMode::kVectorized, QueryEvalMode::kRowwise}) {
    ExecutorOptions with_zm;
    with_zm.use_zone_maps = true;
    with_zm.query_eval = mode;
    ExecutorOptions without_zm = with_zm;
    without_zm.use_zone_maps = false;
    QueryExecutor exec_zm(&catalog, &registry, with_zm);
    QueryExecutor exec_plain(&catalog, &registry, without_zm);
    for (const Query& q : queries) {
      auto a = exec_zm.Execute(q);
      auto b = exec_plain.Execute(q);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->count, b->count) << q.ToSql();
    }
  }
}

TEST(ExecutorTest, ZoneMapSkippingOnClusteredDataPreservesCounts) {
  // YCSB documents carry a sequential id, so per-chunk row groups have
  // disjoint id ranges — the classic clustered case zone maps excel at.
  workload::Dataset ds = workload::GenerateYcsb({600, 51});
  PredicateRegistry registry;
  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, 0);
  LoadStats stats;
  const size_t chunk_size = 100;
  for (size_t start = 0; start < ds.records.size(); start += chunk_size) {
    json::JsonChunk chunk;
    const size_t end = std::min(ds.records.size(), start + chunk_size);
    for (size_t i = start; i < end; ++i) chunk.AppendSerialized(ds.records[i]);
    ASSERT_TRUE(loader.IngestChunk(chunk, BitVectorSet(), true, &catalog,
                                   &stats)
                    .ok());
  }

  Query q;
  q.clauses = {Clause::Of(SimplePredicate::KeyValue("id", 250))};

  ExecutorOptions with_zm;
  with_zm.use_zone_maps = true;
  ExecutorOptions without_zm;
  without_zm.use_zone_maps = false;
  QueryExecutor exec_zm(&catalog, &registry, with_zm);
  QueryExecutor exec_plain(&catalog, &registry, without_zm);

  auto r_zm = exec_zm.Execute(q);
  auto r_plain = exec_plain.Execute(q);
  ASSERT_TRUE(r_zm.ok());
  ASSERT_TRUE(r_plain.ok());
  EXPECT_EQ(r_zm->count, 1u);
  EXPECT_EQ(r_plain->count, 1u);
  // 6 groups; id=250 lives only in group 2 -> 5 groups pruned by zone maps.
  EXPECT_EQ(r_zm->stats.groups_skipped_zonemap, 5u);
  EXPECT_EQ(r_zm->stats.groups_scanned, 1u);
  EXPECT_EQ(r_plain->stats.groups_skipped_zonemap, 0u);
  EXPECT_EQ(r_plain->stats.groups_scanned, 6u);
}

TEST(ExecutorTest, ZoneMapsNeverChangeResults) {
  // Randomized agreement check across predicate kinds.
  workload::Dataset ds = workload::GenerateYelp({400, 53});
  PredicateRegistry registry;
  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, 0);
  LoadStats stats;
  json::JsonChunk chunk;
  for (const auto& r : ds.records) chunk.AppendSerialized(r);
  ASSERT_TRUE(
      loader.IngestChunk(chunk, BitVectorSet(), true, &catalog, &stats).ok());

  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYelp).AllCandidates();
  ExecutorOptions off;
  off.use_zone_maps = false;
  QueryExecutor exec_zm(&catalog, &registry);
  QueryExecutor exec_plain(&catalog, &registry, off);
  Rng rng(57);
  for (int iter = 0; iter < 25; ++iter) {
    Query q;
    q.clauses = {pool[rng.NextBounded(pool.size())]};
    if (rng.NextBool()) q.clauses.push_back(pool[rng.NextBounded(pool.size())]);
    auto a = exec_zm.Execute(q);
    auto b = exec_plain.Execute(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->count, b->count) << q.ToSql();
  }
}

TEST(ExecutorTest, SkippingRequiresIds) {
  workload::Dataset ds = workload::GenerateWinLog({10, 33});
  PredicateRegistry registry;
  TableCatalog catalog(ds.schema);
  QueryExecutor executor(&catalog, &registry);
  Query q;
  q.clauses.push_back(Clause::Of(SimplePredicate::Presence("info")));
  EXPECT_TRUE(executor.ExecuteWithSkipping(q, {}).status().IsInvalidArgument());
}

TEST(ExecutorTest, EmptyCatalogYieldsZero) {
  columnar::Schema schema({{"info", columnar::ColumnType::kString}});
  TableCatalog catalog(schema);
  PredicateRegistry registry;
  QueryExecutor executor(&catalog, &registry);
  Query q;
  q.clauses.push_back(Clause::Of(SimplePredicate::Presence("info")));
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
}

}  // namespace
}  // namespace ciao
