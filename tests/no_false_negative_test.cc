// The load-bearing correctness property of client-assisted loading
// (paper §IV-B): the string-matching prefilter may report false
// positives, but NEVER false negatives — otherwise partial loading would
// silently drop records that queries need. This suite hammers that
// property across every dataset generator and every Table II predicate
// template, plus adversarial hand-built records.

#include <gtest/gtest.h>

#include <algorithm>

#include "client/client_filter.h"
#include "common/random.h"
#include "engine/executor.h"
#include "json/chunk.h"
#include "json/parser.h"
#include "json/writer.h"
#include "predicate/pattern_compiler.h"
#include "predicate/registry.h"
#include "predicate/semantic_eval.h"
#include "storage/jit_loader.h"
#include "storage/partial_loader.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

class NoFalseNegativeTest
    : public ::testing::TestWithParam<workload::DatasetKind> {};

TEST_P(NoFalseNegativeTest, AllTemplatePredicatesOnGeneratedRecords) {
  workload::GeneratorOptions opt;
  opt.num_records = 500;
  opt.seed = 1234;
  const workload::Dataset ds = workload::GenerateDataset(GetParam(), opt);
  const auto pool = workload::TemplatesFor(GetParam()).AllCandidates();

  // Pre-parse records once.
  std::vector<json::Value> parsed;
  parsed.reserve(ds.records.size());
  for (const std::string& r : ds.records) {
    auto v = json::Parse(r);
    ASSERT_TRUE(v.ok());
    parsed.push_back(std::move(v).value());
  }

  size_t semantic_hits = 0;
  size_t raw_hits = 0;
  for (const Clause& clause : pool) {
    auto program = RawClauseProgram::Compile(clause);
    ASSERT_TRUE(program.ok()) << clause.ToSql();
    for (size_t i = 0; i < ds.records.size(); ++i) {
      const bool semantic = EvaluateClause(clause, parsed[i]);
      const bool raw = program->Matches(ds.records[i]);
      if (semantic) {
        ++semantic_hits;
        ASSERT_TRUE(raw) << "FALSE NEGATIVE: " << clause.ToSql() << " on "
                         << ds.records[i];
      }
      if (raw) ++raw_hits;
    }
  }
  // Sanity: the property is not vacuous, and false positives exist but
  // are bounded (the prefilter is useful).
  EXPECT_GT(semantic_hits, 0u);
  EXPECT_GE(raw_hits, semantic_hits);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, NoFalseNegativeTest,
    ::testing::Values(workload::DatasetKind::kYelp,
                      workload::DatasetKind::kWinLog,
                      workload::DatasetKind::kYcsb),
    [](const auto& info) {
      return std::string(workload::DatasetKindName(info.param));
    });

TEST(NoFalseNegativeTest, DisjunctiveClausesOnGeneratedRecords) {
  const workload::Dataset ds = workload::GenerateYelp({300, 77});
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYelp).AllCandidates();
  Rng rng(55);
  for (int iter = 0; iter < 30; ++iter) {
    // Random 2-3 term disjunction assembled from template terms.
    std::vector<SimplePredicate> terms;
    const size_t n_terms = 2 + rng.NextBounded(2);
    for (size_t t = 0; t < n_terms; ++t) {
      const Clause& c = pool[rng.NextBounded(pool.size())];
      terms.push_back(c.terms[0]);
    }
    const Clause clause = Clause::Or(terms);
    auto program = RawClauseProgram::Compile(clause);
    ASSERT_TRUE(program.ok());
    for (const std::string& record : ds.records) {
      auto parsed = json::Parse(record);
      if (EvaluateClause(clause, *parsed)) {
        ASSERT_TRUE(program->Matches(record))
            << clause.ToSql() << " on " << record;
      }
    }
  }
}

TEST(NoFalseNegativeTest, AdversarialRecords) {
  // Records engineered to stress the windowing and escaping logic.
  struct Case {
    SimplePredicate predicate;
    json::Object fields;
  };
  std::vector<Case> cases;
  // Key suffix collision: the key pattern also matches a longer key first.
  cases.push_back({SimplePredicate::KeyValue("score", 42),
                   {{"linear_score", json::Value(int64_t{777})},
                    {"score", json::Value(int64_t{42})}}});
  // Value that shares digits with an earlier field.
  cases.push_back({SimplePredicate::KeyValue("b", 10),
                   {{"a", json::Value(int64_t{10})},
                    {"b", json::Value(int64_t{10})}}});
  // String value containing a comma.
  cases.push_back({SimplePredicate::KeyValue("s", json::Value("x,y")),
                   {{"s", json::Value("x,y")},
                    {"t", json::Value(int64_t{0})}}});
  // Escaped characters in the matched value.
  cases.push_back({SimplePredicate::Exact("s", "a\"b\\c"),
                   {{"s", json::Value("a\"b\\c")}}});
  // Substring spanning escape sequences.
  cases.push_back({SimplePredicate::Substring("s", "x\ny"),
                   {{"s", json::Value("wx\nyz")}}});
  // Unicode operand.
  cases.push_back({SimplePredicate::Exact("s", "caf\xC3\xA9"),
                   {{"s", json::Value("caf\xC3\xA9")}}});
  // Last field in the record (no trailing comma for the window scan).
  cases.push_back({SimplePredicate::KeyValue("z", 9),
                   {{"a", json::Value(int64_t{1})},
                    {"z", json::Value(int64_t{9})}}});
  // Nested object field.
  {
    json::Value inner{json::Object{}};
    inner.Add("city", "paris");
    cases.push_back({SimplePredicate::Exact("addr.city", "paris"),
                     {{"addr", std::move(inner)}}});
  }

  for (const Case& c : cases) {
    json::Value record{json::Object(c.fields)};
    ASSERT_TRUE(EvaluateSimple(c.predicate, record))
        << c.predicate.ToSql() << " should hold semantically";
    auto program = RawPredicateProgram::Compile(c.predicate);
    ASSERT_TRUE(program.ok());
    const std::string serialized = json::Write(record);
    EXPECT_TRUE(program->Matches(serialized))
        << "FALSE NEGATIVE: " << c.predicate.ToSql() << " on " << serialized;
  }
}

TEST(NoFalseNegativeTest, RandomizedKeyValueFuzz) {
  // Random flat records with colliding key names and values; every
  // semantically-true key-value predicate must raw-match.
  Rng rng(0xF00D);
  const std::vector<std::string> keys = {"a",  "ab",  "ba", "aa",
                                         "b",  "a_b", "ab_a"};
  for (int iter = 0; iter < 500; ++iter) {
    json::Value record{json::Object{}};
    std::vector<std::string> used;
    for (const std::string& k : keys) {
      if (rng.NextBool(0.6)) {
        record.Add(k, rng.NextInt(0, 12));
        used.push_back(k);
      }
    }
    if (used.empty()) continue;
    const std::string serialized = json::Write(record);
    for (const std::string& k : used) {
      const int64_t v = rng.NextInt(0, 12);
      const SimplePredicate p = SimplePredicate::KeyValue(k, v);
      if (EvaluateSimple(p, record)) {
        auto program = RawPredicateProgram::Compile(p);
        ASSERT_TRUE(program->Matches(serialized))
            << p.ToSql() << " on " << serialized;
      }
    }
  }
}

// ClientFilter end-to-end: bitvectors produced over a chunk have no false
// negatives and match per-record program evaluation bit-for-bit.
TEST(ClientFilterTest, BitvectorsMatchProgramEvaluation) {
  const workload::Dataset ds = workload::GenerateWinLog({300, 31});
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();

  PredicateRegistry registry;
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(registry.Register(pool[i * 7], 0.1, 0.5).ok());
  }

  json::JsonChunk chunk;
  for (const auto& r : ds.records) chunk.AppendSerialized(r);

  ClientFilter filter(&registry);
  PrefilterStats stats;
  const BitVectorSet bits = filter.Evaluate(chunk, &stats);
  ASSERT_EQ(bits.num_predicates(), 5u);
  ASSERT_EQ(bits.num_records(), 300u);
  EXPECT_EQ(stats.records_filtered, 300u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GT(stats.MicrosPerRecord(), 0.0);

  for (size_t p = 0; p < 5; ++p) {
    const auto& program = registry.Get(static_cast<uint32_t>(p)).program;
    for (size_t r = 0; r < chunk.size(); ++r) {
      EXPECT_EQ(bits.vector(p).Get(r), program.Matches(chunk.Record(r)));
    }
  }
  EXPECT_GT(filter.ExpectedCostUs(), 0.0);
}

// Promotion must preserve the no-false-negative property end-to-end:
// after the raw sideline is promoted to columnar — with the legacy
// all-zero annotations OR the re-evaluating overload — every skipping
// scan still returns exactly the brute-force count. The legacy all-zero
// bits are sound because a record reaches the sideline only when it
// matches NO pushed predicate (client filter has no false negatives), so
// "no bits set" is exact, not pessimistic — see jit_loader.h. The
// re-evaluating overload must additionally reproduce bits with no false
// negatives so skipping scans keep skipping.
TEST(PromotionSoundnessTest, NoFalseNegativesAfterPromotion) {
  const workload::Dataset ds = workload::GenerateWinLog({400, 91});
  const auto pool = workload::MicroTierPredicates(0.15);

  PredicateRegistry registry;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(registry.Register(pool[i], 0.15, 0.5).ok());
  }

  // Brute-force per-predicate counts.
  std::vector<uint64_t> expected(registry.size(), 0);
  for (const std::string& r : ds.records) {
    auto v = json::Parse(r);
    ASSERT_TRUE(v.ok());
    for (size_t p = 0; p < registry.size(); ++p) {
      if (EvaluateClause(registry.Get(static_cast<uint32_t>(p)).clause, *v)) {
        ++expected[p];
      }
    }
  }

  for (const bool reevaluate : {false, true}) {
    TableCatalog catalog(ds.schema);
    PartialLoader loader(ds.schema, registry.size());
    ClientFilter filter(&registry);
    LoadStats load_stats;
    PrefilterStats prefilter_stats;
    for (size_t start = 0; start < ds.records.size(); start += 64) {
      const size_t end = std::min(start + 64, ds.records.size());
      json::JsonChunk chunk;
      for (size_t i = start; i < end; ++i) {
        chunk.AppendSerialized(ds.records[i]);
      }
      const BitVectorSet bits = filter.Evaluate(chunk, &prefilter_stats);
      ASSERT_TRUE(loader
                      .IngestChunk(chunk, bits, /*partial_loading_enabled=*/
                                   true, &catalog, &load_stats)
                      .ok());
    }
    ASSERT_GT(catalog.raw_rows(), 0u) << "test needs a non-empty sideline";

    JitStats jit;
    if (reevaluate) {
      ASSERT_TRUE(
          PromoteRawToColumnar(&catalog, registry, /*annotation_epoch=*/0,
                               &jit)
              .ok());
    } else {
      ASSERT_TRUE(PromoteRawToColumnar(&catalog, registry.size(), &jit).ok());
    }
    EXPECT_EQ(catalog.raw_rows(), 0u);
    EXPECT_EQ(catalog.loaded_rows(), ds.records.size());

    QueryExecutor executor(&catalog, &registry);
    for (size_t p = 0; p < registry.size(); ++p) {
      Query q;
      q.clauses = {registry.Get(static_cast<uint32_t>(p)).clause};
      auto skipping = executor.Execute(q);
      ASSERT_TRUE(skipping.ok());
      EXPECT_EQ(skipping->plan, PlanKind::kSkippingScan);
      EXPECT_EQ(skipping->count, expected[p])
          << "FALSE NEGATIVE after promotion (reevaluate=" << reevaluate
          << "): " << q.ToSql();
      // The forced full scan agrees — promotion lost no rows.
      auto full = executor.ExecuteFullScan(q);
      ASSERT_TRUE(full.ok());
      EXPECT_EQ(full->count, expected[p]);
    }
  }
}

TEST(ClientFilterTest, SubsetFilterEvaluatesOnlyAssignedIds) {
  const workload::Dataset ds = workload::GenerateWinLog({50, 33});
  const auto pool = workload::MicroTierPredicates(0.35);
  PredicateRegistry registry;
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(registry.Register(pool[i], 0.35, 0.5).ok());
  }
  ClientFilter filter(&registry, {1, 3});
  EXPECT_EQ(filter.num_predicates(), 2u);
  json::JsonChunk chunk;
  for (const auto& r : ds.records) chunk.AppendSerialized(r);
  PrefilterStats stats;
  const BitVectorSet bits = filter.Evaluate(chunk, &stats);
  EXPECT_EQ(bits.num_predicates(), 2u);
  EXPECT_EQ(filter.evaluated_ids(), (std::vector<uint32_t>{1, 3}));
}

}  // namespace
}  // namespace ciao
