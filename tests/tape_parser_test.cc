// Differential suite: the tape parser's accept/reject behavior and every
// extracted field must agree with the json::Parse DOM oracle — over the
// workload corpora, escape/unicode/number torture cases, malformed-input
// families, and byte-mutation fuzzing. The tape path is the loader's
// default, so this suite is what licenses it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "columnar/json_converter.h"
#include "common/random.h"
#include "json/parser.h"
#include "json/tape_parser.h"
#include "json/writer.h"
#include "workload/dataset.h"

namespace ciao {
namespace {

using columnar::BatchBuilder;
using json::Tape;
using json::TapeKind;
using json::TapeParser;
using json::TapeToken;

/// Both parsers must agree on acceptance; returns the oracle's verdict.
bool AgreeOnAccept(const std::string& input) {
  TapeParser parser;
  Tape tape;
  const bool oracle_ok = json::Parse(input).ok();
  const bool tape_ok = parser.Parse(input, &tape).ok();
  EXPECT_EQ(oracle_ok, tape_ok) << "input: " << input;
  return oracle_ok;
}

/// Runs both BatchBuilder paths over `records` under `schema` and expects
/// identical batches and error counters (byte-for-byte on every extracted
/// field, via ColumnVector::Equals).
void ExpectIdenticalBatches(const columnar::Schema& schema,
                            const std::vector<std::string>& records) {
  BatchBuilder tape_builder(schema, BatchBuilder::ParsePath::kTape);
  BatchBuilder dom_builder(schema, BatchBuilder::ParsePath::kDom);
  for (const std::string& r : records) {
    const Status tape_st = tape_builder.AppendSerialized(r);
    const Status dom_st = dom_builder.AppendSerialized(r);
    EXPECT_EQ(tape_st.ok(), dom_st.ok()) << "record: " << r;
  }
  EXPECT_EQ(tape_builder.parse_errors(), dom_builder.parse_errors());
  EXPECT_EQ(tape_builder.coercion_errors(), dom_builder.coercion_errors());
  const columnar::RecordBatch tape_batch = tape_builder.Finish();
  const columnar::RecordBatch dom_batch = dom_builder.Finish();
  ASSERT_EQ(tape_batch.num_rows(), dom_batch.num_rows());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    EXPECT_TRUE(tape_batch.column(c).Equals(dom_batch.column(c)))
        << "column " << schema.field(c).name << " diverged";
  }
}

TEST(TapeDifferentialTest, WorkloadCorporaLoadIdentically) {
  for (const auto kind :
       {workload::DatasetKind::kWinLog, workload::DatasetKind::kYelp,
        workload::DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 500;
    gen.seed = 11;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    ExpectIdenticalBatches(ds.schema, ds.records);
    for (const std::string& r : ds.records) {
      EXPECT_TRUE(AgreeOnAccept(r));
    }
  }
}

TEST(TapeDifferentialTest, EscapesAndUnicode) {
  const std::vector<std::string> inputs = {
      "{\"s\":\"plain\"}",
      "{\"s\":\"tab\\there\"}",
      "{\"s\":\"quote\\\"backslash\\\\slash\\/\"}",
      "{\"s\":\"\\b\\f\\n\\r\\t\"}",
      // \u escapes decoding to 1-, 2-, and 3-byte UTF-8.
      "{\"s\":\"\\u0041\\u00e9\\u20ac\"}",
      // Surrogate pair -> 4-byte UTF-8 (U+1F600).
      "{\"s\":\"\\ud83d\\ude00\"}",
      // Raw multibyte UTF-8 passes through untouched.
      "{\"s\":\"mixed \\u0041 and raw \xc3\xa9 and \\n\"}",
      // Escapes inside the key: decodes to plain "key".
      "{\"k\\u0065y\":\"escaped key\"}",
      "{\"s\":\"\"}",
      // NUL via escape.
      "{\"s\":\"nul\\u0000here\"}",
  };
  // Schema with one string column "s" (and "key" for the escaped-key
  // case, which decodes to a plain name).
  const columnar::Schema schema(
      {{"s", columnar::ColumnType::kString},
       {"key", columnar::ColumnType::kString}});
  ExpectIdenticalBatches(schema, inputs);
  for (const std::string& in : inputs) EXPECT_TRUE(AgreeOnAccept(in));
}

TEST(TapeDifferentialTest, NumbersIncludingOverflowFallback) {
  const std::vector<std::string> inputs = {
      R"({"n":0})",
      R"({"n":-0})",
      R"({"n":42})",
      R"({"n":-17})",
      R"({"n":3.25})",
      R"({"n":-0.5})",
      R"({"n":1e3})",
      R"({"n":1E-3})",
      R"({"n":2.5e+2})",
      R"({"n":9223372036854775807})",   // INT64_MAX stays int
      R"({"n":-9223372036854775808})",  // INT64_MIN stays int
      R"({"n":9223372036854775808})",   // overflow -> double on both paths
      R"({"n":-9223372036854775809})",
      R"({"n":1e308})",
      R"({"n":1e-320})",                // denormal accepted by both
  };
  for (const std::string& in : inputs) {
    ASSERT_TRUE(AgreeOnAccept(in));
    // Compare the numeric token against the oracle value exactly,
    // including the int-vs-double representation choice.
    Result<json::Value> oracle = json::Parse(in);
    TapeParser parser;
    Tape tape;
    ASSERT_TRUE(parser.Parse(in, &tape).ok());
    const size_t idx = tape.FindPath("n");
    ASSERT_NE(idx, Tape::npos) << in;
    const TapeToken& t = tape.token(idx);
    const json::Value* v = oracle->FindPath("n");
    ASSERT_NE(v, nullptr);
    if (v->is_int()) {
      ASSERT_EQ(t.kind, TapeKind::kInt) << in;
      EXPECT_EQ(t.i64, v->as_int()) << in;
    } else {
      ASSERT_EQ(t.kind, TapeKind::kDouble) << in;
      EXPECT_EQ(t.f64, v->as_double()) << in;
    }
  }
}

TEST(TapeDifferentialTest, MalformedInputsRejectIdentically) {
  const std::vector<std::string> inputs = {
      "",
      "   ",
      "{",
      "}",
      "{]",
      "[",
      "]",
      "[1,",
      "[1 2]",
      R"({"a")",
      R"({"a":})",
      R"({"a":1,})",
      R"({"a" 1})",
      R"({a:1})",
      R"({"a":1}})",
      R"([1,2,])",
      "tru",
      "falsex",
      "nul",
      "nulll",
      "\"unterminated",
      "\"dangling\\",
      R"("bad escape \q")",
      R"("bad hex \u12g4")",
      R"("truncated hex \u12")",
      R"("lone high \ud800")",
      R"("high then text \ud800abcd")",
      R"("bad low \ud800A")",
      R"("escaped non-low \ud800\u0041")",
      R"("lone low \udc00")",
      "\"raw\ncontrol\"",
      "\"raw\ttab\"",
      "01",
      "-",
      "-x",
      "1.",
      ".5",
      "1e",
      "1e+",
      "1ee4",
      "+1",
      "1e999",    // overflows double: rejected by both
      "-1e999",
      "1 2",      // trailing document
      "{} extra",
      "\xFF\xFE",
  };
  for (const std::string& in : inputs) {
    EXPECT_FALSE(AgreeOnAccept(in)) << "expected reject: " << in;
  }
}

TEST(TapeDifferentialTest, NestingDepthLimit) {
  // The innermost of N nested arrays sits at depth N-1, so 65 brackets
  // reach exactly max_depth (accepted by both) and 66 exceed it
  // (rejected by both).
  json::ParseOptions options;
  options.max_depth = 64;
  std::string ok_doc, too_deep;
  for (int i = 0; i < 65; ++i) ok_doc += "[";
  for (int i = 0; i < 65; ++i) ok_doc += "]";
  for (int i = 0; i < 66; ++i) too_deep += "[";
  for (int i = 0; i < 66; ++i) too_deep += "]";
  TapeParser parser(options);
  Tape tape;
  EXPECT_TRUE(json::Parse(ok_doc, options).ok());
  EXPECT_TRUE(parser.Parse(ok_doc, &tape).ok());
  EXPECT_FALSE(json::Parse(too_deep, options).ok());
  EXPECT_FALSE(parser.Parse(too_deep, &tape).ok());
}

TEST(TapeDifferentialTest, FindPathMirrorsValueFindPath) {
  const std::string record =
      R"({"a":{"b":{"c":7},"s":"x"},"a.b":"literal dot","dup":1,"dup":2,)"
      R"("arr":[1,{"k":2}],"n":null})";
  Result<json::Value> oracle = json::Parse(record);
  ASSERT_TRUE(oracle.ok());
  TapeParser parser;
  Tape tape;
  ASSERT_TRUE(parser.Parse(record, &tape).ok());
  std::string scratch;
  for (const std::string path :
       {"a", "a.b", "a.b.c", "a.s", "dup", "arr", "arr.k", "n", "missing",
        "a.missing", "a.b.c.d", "", "a."}) {
    const json::Value* v = oracle->FindPath(path);
    const size_t idx = tape.FindPath(path);
    EXPECT_EQ(v != nullptr, idx != Tape::npos) << "path: " << path;
    if (v == nullptr || idx == Tape::npos) continue;
    const TapeToken& t = tape.token(idx);
    if (v->is_int()) {
      EXPECT_EQ(t.i64, v->as_int()) << path;
    } else if (v->is_string()) {
      EXPECT_EQ(tape.DecodedString(t, &scratch), v->as_string()) << path;
    }
  }
  // "dup" resolves to the first occurrence on both paths.
  EXPECT_EQ(tape.token(tape.FindPath("dup")).i64, 1);
  EXPECT_EQ(oracle->FindPath("dup")->as_int(), 1);
}

TEST(TapeDifferentialTest, TapeNavigationSkipsContainers) {
  const std::string record =
      R"({"skip":[[1,2],{"x":[3]}],"after":"found"})";
  TapeParser parser;
  Tape tape;
  ASSERT_TRUE(parser.Parse(record, &tape).ok());
  const size_t idx = tape.FindField(0, "after");
  ASSERT_NE(idx, Tape::npos);
  std::string scratch;
  EXPECT_EQ(tape.DecodedString(tape.token(idx), &scratch), "found");
  // Root extent covers the whole tape.
  EXPECT_EQ(tape.token(0).extent, tape.size());
}

TEST(TapeDifferentialTest, ParsePrefixConsumedMatchesOracle) {
  const std::string stream = R"({"a":1}  {"b":2}trailing)";
  size_t oracle_consumed = 0, tape_consumed = 0;
  ASSERT_TRUE(json::ParsePrefix(stream, &oracle_consumed).ok());
  TapeParser parser;
  Tape tape;
  ASSERT_TRUE(parser.ParsePrefix(stream, &tape, &tape_consumed).ok());
  EXPECT_EQ(tape_consumed, oracle_consumed);
}

TEST(TapeDifferentialTest, MutationFuzzAgreesOnAcceptAndExtraction) {
  workload::GeneratorOptions gen;
  gen.num_records = 200;
  gen.seed = 23;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kYelp, gen);
  Rng rng(0xDEAD);
  size_t accepted = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string record = ds.records[rng.NextBounded(ds.records.size())];
    const int flips = 1 + static_cast<int>(rng.NextBounded(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(record.size());
      record[pos] = static_cast<char>(rng.NextBounded(256));
    }
    if (AgreeOnAccept(record)) {
      ++accepted;
      ExpectIdenticalBatches(ds.schema, {record});
    }
  }
  // Sanity: the fuzz must exercise both accept and reject outcomes.
  EXPECT_GT(accepted, 0u);
}

TEST(TapeDifferentialTest, TapeReuseAcrossRecordsIsClean) {
  // A large record followed by a small one must not leak tokens.
  TapeParser parser;
  Tape tape;
  ASSERT_TRUE(
      parser.Parse(R"({"a":[1,2,3,4,5],"b":{"c":"dddddd"}})", &tape).ok());
  const size_t big = tape.size();
  ASSERT_TRUE(parser.Parse(R"({"z":1})", &tape).ok());
  EXPECT_LT(tape.size(), big);
  EXPECT_EQ(tape.token(tape.FindPath("z")).i64, 1);
  EXPECT_EQ(tape.FindPath("a"), Tape::npos);
}

}  // namespace
}  // namespace ciao
