// Unit and system tests of the durable out-of-core layer: segment
// spilling, mmap pinning + LRU residency, checkpoint/recovery, WAL
// replay, and byte-identical query results between the all-in-RAM
// pipeline and the disk-resident one.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "core/system.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/fs.h"
#include "storage/segment_store.h"
#include "storage/wal.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

namespace ciao {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

columnar::Schema TestSchema() {
  return columnar::Schema{{{"a", columnar::ColumnType::kInt64},
                           {"s", columnar::ColumnType::kString}}};
}

/// Builds a small single-group columnar file with `n` rows.
std::string MakeFileBytes(uint64_t n, uint64_t salt = 0) {
  const columnar::Schema schema = TestSchema();
  columnar::BatchBuilder builder(schema);
  for (uint64_t i = 0; i < n; ++i) {
    const Status st = builder.AppendSerialized(
        "{\"a\":" + std::to_string(i + salt) + ",\"s\":\"v" +
        std::to_string(i % 3) + "\"}");
    EXPECT_TRUE(st.ok());
  }
  columnar::TableWriter writer(schema);
  EXPECT_TRUE(
      writer.AppendRowGroup(builder.Finish(), BitVectorSet(0, n)).ok());
  return std::move(writer).Finish();
}

ColumnarSegment MakeSegment(uint64_t n, uint64_t salt = 0) {
  ColumnarSegment segment;
  segment.file_bytes = MakeFileBytes(n, salt);
  segment.num_rows = n;
  return segment;
}

// ---------- Spill + pin ----------

TEST(SegmentStoreTest, SpillThenPinReturnsIdenticalBytes) {
  const std::string dir = TempDir("ciao_store_spill");
  SegmentStore::Options options;
  options.dir = dir;
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  ColumnarSegment segment = MakeSegment(16);
  const std::string original = segment.file_bytes;
  ASSERT_TRUE((*store)->SpillSegment(&segment).ok());
  EXPECT_TRUE(segment.file_bytes.empty());
  ASSERT_NE(segment.disk, nullptr);
  EXPECT_EQ(segment.byte_size(), original.size());
  EXPECT_EQ((*store)->segments_spilled(), 1u);

  auto pin = PinSegment(segment);
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  EXPECT_TRUE(pin->fresh_mapping);
  EXPECT_EQ(pin->bytes, original);

  // Second pin: cache hit, same bytes, no new mapping.
  auto pin2 = PinSegment(segment);
  ASSERT_TRUE(pin2.ok());
  EXPECT_FALSE(pin2->fresh_mapping);
  EXPECT_EQ(pin2->bytes, original);
  EXPECT_EQ((*store)->cache()->mappings_created(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(SegmentStoreTest, HeapResidentSegmentPinsWithoutMapping) {
  ColumnarSegment segment = MakeSegment(4);
  auto pin = PinSegment(segment);
  ASSERT_TRUE(pin.ok());
  EXPECT_FALSE(pin->fresh_mapping);
  EXPECT_EQ(pin->mapping, nullptr);
  EXPECT_EQ(pin->bytes, segment.file_bytes);
}

TEST(SegmentStoreTest, MappingCacheEvictsLeastRecentlyUsed) {
  const std::string dir = TempDir("ciao_store_lru");
  SegmentStore::Options options;
  options.dir = dir;
  ColumnarSegment a = MakeSegment(64, 0);
  // Budget fits roughly one segment: pinning the second must evict the
  // first from *cache* residency (outstanding pins stay valid).
  options.memory_budget_bytes = a.file_bytes.size() + 16;
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok());

  ColumnarSegment b = MakeSegment(64, 1000);
  ASSERT_TRUE((*store)->SpillSegment(&a).ok());
  ASSERT_TRUE((*store)->SpillSegment(&b).ok());

  const std::string a_bytes(PinSegment(a)->bytes);
  {
    auto pin_b = PinSegment(b);
    ASSERT_TRUE(pin_b.ok());
    EXPECT_TRUE(pin_b->fresh_mapping);
  }
  EXPECT_LE((*store)->cache()->cached_bytes(), options.memory_budget_bytes);
  // A was evicted: pinning it again is a fresh mapping with intact bytes.
  auto pin_a = PinSegment(a);
  ASSERT_TRUE(pin_a.ok());
  EXPECT_TRUE(pin_a->fresh_mapping);
  EXPECT_EQ(pin_a->bytes, a_bytes);
  EXPECT_EQ((*store)->cache()->mappings_created(), 3u);
  std::filesystem::remove_all(dir);
}

TEST(SegmentStoreTest, PinDetectsCorruptedSpilledFile) {
  const std::string dir = TempDir("ciao_store_corrupt");
  SegmentStore::Options options;
  options.dir = dir;
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok());

  ColumnarSegment segment = MakeSegment(32);
  ASSERT_TRUE((*store)->SpillSegment(&segment).ok());
  // Flip one byte near the end of the file body (inside column data).
  {
    std::fstream f(segment.disk->path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(segment.disk->size / 2));
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(segment.disk->size / 2));
    c = static_cast<char>(c ^ 0x20);
    f.write(&c, 1);
  }
  auto pin = PinSegment(segment);
  ASSERT_FALSE(pin.ok());
  EXPECT_TRUE(pin.status().IsCorruption()) << pin.status().ToString();
  std::filesystem::remove_all(dir);
}

// ---------- Checkpoint + recovery (store level) ----------

TEST(SegmentStoreTest, CheckpointThenReopenRecoversSegmentsAndSideline) {
  const std::string dir = TempDir("ciao_store_ckpt");
  SegmentStore::Options options;
  options.dir = dir;
  std::string a_bytes, b_bytes;
  {
    auto store = SegmentStore::Open(options);
    ASSERT_TRUE(store.ok());
    ColumnarSegment a = MakeSegment(8, 0);
    ColumnarSegment b = MakeSegment(12, 100);
    a_bytes = a.file_bytes;
    b_bytes = b.file_bytes;
    a.annotation_epoch = 0;
    b.annotation_epoch = 0;
    b.annotations_exact = true;
    ASSERT_TRUE((*store)->SpillSegment(&a).ok());
    ASSERT_TRUE((*store)->SpillSegment(&b).ok());
    std::vector<SegmentRef> refs;
    refs.push_back(std::make_shared<const ColumnarSegment>(std::move(a)));
    refs.push_back(std::make_shared<const ColumnarSegment>(std::move(b)));
    RawStore sideline;
    sideline.Append("{\"a\":7,\"s\":\"raw\"}");
    ASSERT_TRUE((*store)
                    ->Checkpoint(refs, sideline, /*applied_seq=*/5,
                                 /*registry_fingerprint=*/42, /*epoch_id=*/3)
                    .ok());
    EXPECT_EQ((*store)->checkpoints_completed(), 1u);
  }
  auto reopened = SegmentStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  SegmentStore::Recovered recovered = (*reopened)->TakeRecovered();
  EXPECT_EQ(recovered.applied_seq, 5u);
  EXPECT_EQ(recovered.registry_fingerprint, 42u);
  EXPECT_EQ(recovered.checkpoint_epoch_id, 3u);
  ASSERT_EQ(recovered.segments.size(), 2u);
  ASSERT_EQ(recovered.sideline.size(), 1u);
  EXPECT_EQ(recovered.sideline[0], "{\"a\":7,\"s\":\"raw\"}");
  EXPECT_TRUE(recovered.wal_batches.empty());

  // Byte-identical payloads through the pin path.
  EXPECT_EQ(recovered.segments[0].num_rows, 8u);
  EXPECT_TRUE(recovered.segments[1].annotations_exact);
  EXPECT_EQ(std::string(PinSegment(recovered.segments[0])->bytes), a_bytes);
  EXPECT_EQ(std::string(PinSegment(recovered.segments[1])->bytes), b_bytes);
  std::filesystem::remove_all(dir);
}

TEST(SegmentStoreTest, UncheckpointedSpillIsOrphanCollectedOnOpen) {
  const std::string dir = TempDir("ciao_store_orphan");
  SegmentStore::Options options;
  options.dir = dir;
  std::string orphan_path;
  {
    auto store = SegmentStore::Open(options);
    ASSERT_TRUE(store.ok());
    ColumnarSegment segment = MakeSegment(8);
    ASSERT_TRUE((*store)->SpillSegment(&segment).ok());
    orphan_path = segment.disk->path;
    // No checkpoint: crash here. The file exists but no manifest lists it.
    ASSERT_TRUE(std::filesystem::exists(orphan_path));
  }
  auto reopened = SegmentStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->TakeRecovered().segments.empty());
  EXPECT_FALSE(std::filesystem::exists(orphan_path));
  std::filesystem::remove_all(dir);
}

TEST(SegmentStoreTest, WalBatchesPastAppliedSeqAreStagedForReplay) {
  const std::string dir = TempDir("ciao_store_walstage");
  SegmentStore::Options options;
  options.dir = dir;
  {
    auto store = SegmentStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->LogBatch(1, {"{\"a\":1}"}).ok());
    ASSERT_TRUE((*store)->LogBatch(2, {"{\"a\":2}", "{\"a\":22}"}).ok());
    ASSERT_TRUE((*store)->LogBatch(3, {"{\"a\":3}"}).ok());
    EXPECT_GT((*store)->wal_tail_bytes(), 0u);
    // Checkpoint covering batch 1 only (empty catalog for simplicity).
    RawStore empty;
    ASSERT_TRUE(
        (*store)->Checkpoint({}, empty, /*applied_seq=*/1, 0, 0).ok());
    // Post-checkpoint batches land in the fresh WAL.
    ASSERT_TRUE((*store)->LogBatch(2, {"{\"a\":2}", "{\"a\":22}"}).ok());
    ASSERT_TRUE((*store)->LogBatch(3, {"{\"a\":3}"}).ok());
  }
  auto reopened = SegmentStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  SegmentStore::Recovered recovered = (*reopened)->TakeRecovered();
  EXPECT_EQ(recovered.applied_seq, 1u);
  ASSERT_EQ(recovered.wal_batches.size(), 2u);
  EXPECT_EQ(recovered.wal_batches[0].seq, 2u);
  ASSERT_EQ(recovered.wal_batches[0].records.size(), 2u);
  EXPECT_EQ(recovered.wal_batches[0].records[1], "{\"a\":22}");
  EXPECT_EQ(recovered.wal_batches[1].seq, 3u);
  std::filesystem::remove_all(dir);
}

// ---------- WAL framing ----------

TEST(WalTest, ReplayRecoversEveryCompleteFrameAtEveryTruncation) {
  const std::string dir = TempDir("ciao_wal_trunc");
  const std::string path = dir + "/wal.log";
  std::vector<std::vector<std::string>> batches = {
      {"{\"a\":1}"},
      {"{\"a\":2}", "{\"a\":3,\"s\":\"x\"}"},
      {std::string("bin\0ary", 7)},  // binary-safe
  };
  {
    auto wal = WriteAheadLog::Open(path, WalSyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_TRUE((*wal)->Append(i + 1, batches[i]).ok());
    }
  }
  std::string full;
  ASSERT_TRUE(fs::ReadFile(path, &full).ok());

  // Frame boundaries: magic + len + crc + payload(seq + count + records).
  std::vector<size_t> ends;
  size_t off = 0;
  for (const auto& records : batches) {
    size_t payload = 8 + 4;
    for (const std::string& r : records) payload += 4 + r.size();
    off += 12 + payload;
    ends.push_back(off);
  }
  ASSERT_EQ(off, full.size());

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto replay = WriteAheadLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    size_t expect_complete = 0;
    while (expect_complete < ends.size() && ends[expect_complete] <= cut) {
      ++expect_complete;
    }
    ASSERT_EQ(replay->batches.size(), expect_complete) << "cut=" << cut;
    EXPECT_EQ(replay->valid_bytes,
              expect_complete == 0 ? 0 : ends[expect_complete - 1])
        << "cut=" << cut;
    EXPECT_EQ(replay->truncated_tail,
              cut != (expect_complete == 0 ? 0 : ends[expect_complete - 1]))
        << "cut=" << cut;
    for (size_t i = 0; i < expect_complete; ++i) {
      EXPECT_EQ(replay->batches[i].seq, i + 1);
      EXPECT_EQ(replay->batches[i].records, batches[i]) << "cut=" << cut;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(WalTest, ReplayStopsAtCorruptFrame) {
  const std::string dir = TempDir("ciao_wal_corrupt");
  const std::string path = dir + "/wal.log";
  {
    auto wal = WriteAheadLog::Open(path, WalSyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, {"{\"a\":1}"}).ok());
    ASSERT_TRUE((*wal)->Append(2, {"{\"a\":2}"}).ok());
  }
  std::string bytes;
  ASSERT_TRUE(fs::ReadFile(path, &bytes).ok());
  bytes[bytes.size() - 2] ^= 0x01;  // rot inside frame 2's payload
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->batches.size(), 1u);
  EXPECT_EQ(replay->batches[0].seq, 1u);
  EXPECT_TRUE(replay->truncated_tail);

  // Open() truncates the bad tail; appends then continue cleanly.
  auto wal = WriteAheadLog::Open(path, WalSyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(2, {"{\"a\":2}"}).ok());
  auto replay2 = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay2.ok());
  ASSERT_EQ(replay2->batches.size(), 2u);
  EXPECT_FALSE(replay2->truncated_tail);
  std::filesystem::remove_all(dir);
}

// ---------- System level: out-of-core == in-RAM, recovery ----------

struct SystemFixture {
  workload::Dataset ds;
  Workload wl;
  CiaoConfig config;

  explicit SystemFixture(double budget_us = 80.0) {
    workload::GeneratorOptions gen;
    gen.num_records = 400;
    gen.seed = 7;
    ds = workload::GenerateDataset(workload::DatasetKind::kYcsb, gen);
    const auto pool = workload::TemplatesFor(workload::DatasetKind::kYcsb)
                          .AllCandidates();
    workload::WorkloadSpec spec;
    spec.num_queries = 12;
    spec.distribution = workload::PredicateDistribution::kZipfian;
    spec.zipf_s = 1.5;
    spec.seed = 5;
    wl = workload::GenerateWorkload(pool, spec);
    config.budget_us = budget_us;
    config.chunk_size = 64;
    config.sample_size = 200;
  }

  Result<std::unique_ptr<CiaoSystem>> Boot() const {
    return CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                 CostModel::Default());
  }
};

std::vector<std::pair<uint64_t, std::vector<uint64_t>>> RunAll(
    CiaoSystem* system, const Workload& wl) {
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> out;
  for (const Query& q : wl.queries) {
    auto r = system->ExecuteQuery(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) out.emplace_back(r->count, r->projected_hashes);
  }
  return out;
}

TEST(OutOfCoreSystemTest, DiskResidentResultsByteIdenticalToInRam) {
  SystemFixture fixture;

  // Reference: storage off, everything on the heap.
  auto ram = fixture.Boot();
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();
  ASSERT_TRUE((*ram)->IngestRecords(fixture.ds.records).ok());
  const auto expected = RunAll(ram->get(), fixture.wl);

  // Out-of-core: storage on, budget far below the dataset so scans run
  // through evicting mmap pins.
  SystemFixture disk_fixture;
  disk_fixture.config.storage.enabled = true;
  disk_fixture.config.storage.dir = TempDir("ciao_ooc_system");
  disk_fixture.config.storage.memory_budget_bytes = 8 << 10;  // 8 KB
  auto disk = disk_fixture.Boot();
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->IngestRecords(disk_fixture.ds.records).ok());
  ASSERT_NE((*disk)->segment_store(), nullptr);
  EXPECT_GT((*disk)->segment_store()->segments_spilled(), 0u);

  uint64_t segments_mapped = 0, bytes_mapped = 0;
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> actual;
  for (const Query& q : disk_fixture.wl.queries) {
    auto r = (*disk)->ExecuteQuery(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    segments_mapped += r->stats.segments_mapped;
    bytes_mapped += r->stats.bytes_mapped;
    actual.emplace_back(r->count, r->projected_hashes);
  }
  EXPECT_EQ(actual, expected);
  // The scans really went through the mapping path.
  EXPECT_GT(segments_mapped, 0u);
  EXPECT_GT(bytes_mapped, 0u);
  std::filesystem::remove_all(disk_fixture.config.storage.dir);
}

TEST(OutOfCoreSystemTest, CleanShutdownReopensWithoutReingest) {
  SystemFixture fixture;
  fixture.config.storage.enabled = true;
  fixture.config.storage.dir = TempDir("ciao_ooc_reopen");
  fixture.config.storage.memory_budget_bytes = 1 << 20;

  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> expected;
  {
    auto system = fixture.Boot();
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    ASSERT_TRUE((*system)->IngestRecords(fixture.ds.records).ok());
    expected = RunAll(system->get(), fixture.wl);
    // Destructor checkpoints: WAL empties, segments turn durable.
  }
  auto reopened = fixture.Boot();
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // No ingest: the rows come back from the checkpointed segment files.
  EXPECT_EQ(RunAll(reopened->get(), fixture.wl), expected);
  EXPECT_EQ((*reopened)->load_stats().records_in, 0u);  // no re-ingest
  std::filesystem::remove_all(fixture.config.storage.dir);
}

TEST(OutOfCoreSystemTest, CrashImageRecoversAcknowledgedBatchesFromWal) {
  SystemFixture fixture;
  fixture.config.storage.enabled = true;
  fixture.config.storage.dir = TempDir("ciao_ooc_crash");
  const std::string crash_dir = TempDir("ciao_ooc_crash_image");

  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> expected;
  {
    auto system = fixture.Boot();
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    // Several acknowledged batches, then a crash (dir snapshot taken
    // while the system is live — the destructor's checkpoint never runs
    // on the image).
    const size_t batch = 50;
    for (size_t i = 0; i < fixture.ds.records.size(); i += batch) {
      const std::vector<std::string> slice(
          fixture.ds.records.begin() + i,
          fixture.ds.records.begin() +
              std::min(i + batch, fixture.ds.records.size()));
      ASSERT_TRUE((*system)->IngestRecords(slice).ok());
    }
    expected = RunAll(system->get(), fixture.wl);
    std::filesystem::remove_all(crash_dir);
    std::filesystem::copy(fixture.config.storage.dir, crash_dir,
                          std::filesystem::copy_options::recursive);
  }
  SystemFixture recovered_fixture;
  recovered_fixture.config.storage.enabled = true;
  recovered_fixture.config.storage.dir = crash_dir;
  auto recovered = recovered_fixture.Boot();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(RunAll(recovered->get(), recovered_fixture.wl), expected);
  std::filesystem::remove_all(fixture.config.storage.dir);
  std::filesystem::remove_all(crash_dir);
}

TEST(OutOfCoreSystemTest, CompactorPromotesSidelineAndCheckpoints) {
  SystemFixture fixture;
  fixture.config.storage.enabled = true;
  fixture.config.storage.dir = TempDir("ciao_ooc_compact");
  // Adaptive on so the sideline JIT machinery exists; compactor manual.
  fixture.config.adaptive.enabled = true;
  auto system = fixture.Boot();
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  ASSERT_TRUE((*system)->IngestRecords(fixture.ds.records).ok());
  const auto expected = RunAll(system->get(), fixture.wl);

  const uint64_t sidelined = (*system)->catalog().raw_rows();
  const uint64_t checkpoints_before =
      (*system)->segment_store()->checkpoints_completed();
  ASSERT_TRUE((*system)->CompactAndCheckpoint().ok());
  // The sideline merged into columnar segments, off the query path.
  EXPECT_EQ((*system)->catalog().raw_rows(), 0u);
  EXPECT_GT((*system)->segment_store()->checkpoints_completed(),
            checkpoints_before);
  if (sidelined > 0) {
    EXPECT_GE((*system)->catalog().loaded_rows(), sidelined);
  }
  EXPECT_EQ(RunAll(system->get(), fixture.wl), expected);
  std::filesystem::remove_all(fixture.config.storage.dir);
}

TEST(OutOfCoreSystemTest, RegistryFingerprintChangesWithClauseSet) {
  SystemFixture fixture;
  auto a = fixture.Boot();
  ASSERT_TRUE(a.ok());
  const uint64_t fp_a = RegistryFingerprint((*a)->registry());
  EXPECT_EQ(fp_a, RegistryFingerprint((*a)->registry()));  // deterministic

  SystemFixture other(5000.0);  // different budget -> different pushdown
  auto b = other.Boot();
  ASSERT_TRUE(b.ok());
  if ((*b)->registry().size() != (*a)->registry().size()) {
    EXPECT_NE(fp_a, RegistryFingerprint((*b)->registry()));
  }
}

}  // namespace
}  // namespace ciao
