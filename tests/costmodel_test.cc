#include <gtest/gtest.h>

#include "common/random.h"
#include "costmodel/calibration.h"
#include "costmodel/cost_model.h"
#include "costmodel/hardware_profile.h"
#include "costmodel/regression.h"
#include "workload/dataset.h"

namespace ciao {
namespace {

// ---------- Model arithmetic ----------

TEST(CostModelTest, PredictMatchesFormula) {
  CostModelCoefficients k{0.01, 0.001, 0.02, 0.002, 0.5};
  CostModel model(k);
  const double sel = 0.3, lp = 10, lt = 200;
  const double expected = sel * (0.01 * lp + 0.001 * lt) +
                          (1 - sel) * (0.02 * lp + 0.002 * lt) + 0.5;
  EXPECT_NEAR(model.PredictUs(sel, lp, lt), expected, 1e-12);
}

TEST(CostModelTest, SelectivityClamped) {
  CostModel model = CostModel::Default();
  EXPECT_DOUBLE_EQ(model.PredictUs(-0.5, 5, 100), model.PredictUs(0, 5, 100));
  EXPECT_DOUBLE_EQ(model.PredictUs(1.5, 5, 100), model.PredictUs(1, 5, 100));
}

TEST(CostModelTest, PredictionNeverNegative) {
  CostModelCoefficients k{-1, -1, -1, -1, -10};
  CostModel model(k);
  EXPECT_GE(model.PredictUs(0.5, 10, 100), 0.0);
}

TEST(CostModelTest, ClauseCostIsSumOfTerms) {
  CostModel model = CostModel::Default();
  Clause disj = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                            SimplePredicate::Exact("name", "John")});
  const double t0 =
      model.SimplePredicateCostUs(disj.terms[0], 0.1, 300.0);
  const double t1 =
      model.SimplePredicateCostUs(disj.terms[1], 0.2, 300.0);
  auto total = model.ClauseCostUs(disj, {0.1, 0.2}, 300.0);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, t0 + t1, 1e-12);
  EXPECT_FALSE(model.ClauseCostUs(disj, {0.1}, 300.0).ok());
}

TEST(CostModelTest, KeyValueCostsBothPatterns) {
  CostModel model = CostModel::Default();
  const double kv = model.SimplePredicateCostUs(
      SimplePredicate::KeyValue("age", 10), 0.1, 300.0);
  const double presence = model.SimplePredicateCostUs(
      SimplePredicate::Presence("age"), 0.1, 300.0);
  EXPECT_GT(kv, presence);  // the extra value search costs something
}

TEST(CostModelTest, LongerRecordsCostMore) {
  CostModel model = CostModel::Default();
  const SimplePredicate p = SimplePredicate::Substring("text", "needle");
  EXPECT_GT(model.SimplePredicateCostUs(p, 0.1, 2000.0),
            model.SimplePredicateCostUs(p, 0.1, 100.0));
}

// ---------- Batched cost shape ----------

TEST(CostModelTest, BatchedScanBaseFormula) {
  CostModelCoefficients k{0.01, 0.001, 0.02, 0.002, 0.5};
  CostModel model(k);
  EXPECT_NEAR(model.BatchedScanBaseUs(200.0), 0.002 * 200.0 + 0.5, 1e-12);
}

TEST(CostModelTest, BatchedMarginalIndependentOfRecordLength) {
  CostModel model = CostModel::Default();
  const SimplePredicate p = SimplePredicate::Substring("text", "needle");
  EXPECT_DOUBLE_EQ(model.BatchedMarginalPredicateCostUs(p, 0.1, 100.0),
                   model.BatchedMarginalPredicateCostUs(p, 0.1, 2000.0));
}

TEST(CostModelTest, BatchedClauseCostIsSumOfMarginals) {
  CostModel model = CostModel::Default();
  Clause disj = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                            SimplePredicate::KeyValue("age", 10)});
  const double t0 = model.BatchedMarginalPredicateCostUs(disj.terms[0], 0.1,
                                                         300.0);
  const double t1 = model.BatchedMarginalPredicateCostUs(disj.terms[1], 0.2,
                                                         300.0);
  auto total = model.BatchedClauseCostUs(disj, {0.1, 0.2}, 300.0);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, t0 + t1, 1e-12);
  EXPECT_FALSE(model.BatchedClauseCostUs(disj, {0.1}, 300.0).ok());
}

TEST(CostModelTest, BatchedBeatsAdditiveOncePatternsAccumulate) {
  // For realistic record lengths the additive model charges a full scan
  // per predicate; batched charges it once. Four predicates over 500-byte
  // records must already favor batching.
  CostModel model = CostModel::Default();
  const double len_t = 500.0;
  std::vector<SimplePredicate> preds = {
      SimplePredicate::Substring("a", "alpha"),
      SimplePredicate::Exact("b", "beta"),
      SimplePredicate::Presence("c"),
      SimplePredicate::KeyValue("d", 7),
  };
  double additive = 0.0, marginal = 0.0;
  for (const SimplePredicate& p : preds) {
    additive += model.SimplePredicateCostUs(p, 0.3, len_t);
    marginal += model.BatchedMarginalPredicateCostUs(p, 0.3, len_t);
  }
  EXPECT_LT(model.BatchedScanBaseUs(len_t) + marginal, additive);
}

TEST(RuntimeLogTest, BatchedAggregateChargesFullPerRecordCost) {
  RuntimeObservationLog log;
  // 1000 records, 0.002s, 4 predicates of 40 total pattern bytes.
  log.AddBatchedPrefilterAggregate(1000, 0.002, 4, 40.0, 0.5, 300.0);
  const auto obs = log.Snapshot();
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].measured_us, 2.0);  // NOT divided by 4
  EXPECT_DOUBLE_EQ(obs[0].len_p, 40.0);       // total pattern bytes
  EXPECT_DOUBLE_EQ(obs[0].len_t, 300.0);
  // Degenerate inputs are dropped, as in the per-pattern variant.
  log.AddBatchedPrefilterAggregate(0, 0.002, 4, 40.0, 0.5, 300.0);
  log.AddBatchedPrefilterAggregate(1000, 0.002, 0, 40.0, 0.5, 300.0);
  EXPECT_EQ(log.size(), 1u);
}

// ---------- Regression ----------

TEST(RegressionTest, RecoversExactCoefficients) {
  CostModelCoefficients truth{0.004, 0.0002, 0.002, 0.0005, 0.05};
  const CostModel oracle(truth);
  Rng rng(51);
  std::vector<CostObservation> obs;
  for (int i = 0; i < 100; ++i) {
    CostObservation o;
    o.selectivity = rng.NextDouble();
    o.len_p = 2 + rng.NextDouble() * 30;
    o.len_t = 50 + rng.NextDouble() * 1000;
    o.measured_us = oracle.PredictUs(o.selectivity, o.len_p, o.len_t);
    obs.push_back(o);
  }
  auto fitted = FitCostModel(obs);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->coefficients().k1, truth.k1, 1e-6);
  EXPECT_NEAR(fitted->coefficients().k2, truth.k2, 1e-6);
  EXPECT_NEAR(fitted->coefficients().k3, truth.k3, 1e-6);
  EXPECT_NEAR(fitted->coefficients().k4, truth.k4, 1e-6);
  EXPECT_NEAR(fitted->coefficients().c, truth.c, 1e-6);
  EXPECT_NEAR(fitted->r_squared(), 1.0, 1e-9);
}

TEST(RegressionTest, NoisyFitHasReasonableRSquared) {
  CostModelCoefficients truth{0.004, 0.0002, 0.002, 0.0005, 0.05};
  const CostModel oracle(truth);
  Rng rng(53);
  std::vector<CostObservation> obs;
  for (int i = 0; i < 200; ++i) {
    CostObservation o;
    o.selectivity = rng.NextDouble();
    o.len_p = 2 + rng.NextDouble() * 30;
    o.len_t = 50 + rng.NextDouble() * 1000;
    const double noise = 1.0 + 0.05 * rng.NextGaussian();
    o.measured_us = oracle.PredictUs(o.selectivity, o.len_p, o.len_t) * noise;
    obs.push_back(o);
  }
  auto fitted = FitCostModel(obs);
  ASSERT_TRUE(fitted.ok());
  EXPECT_GT(fitted->r_squared(), 0.9);
  EXPECT_LT(fitted->r_squared(), 1.0);
}

TEST(RegressionTest, TooFewObservationsFails) {
  std::vector<CostObservation> obs(4);
  EXPECT_FALSE(FitCostModel(obs).ok());
}

// ---------- Simulated hardware (Table IV) ----------

TEST(HardwareProfileTest, MeasurementsAreDeterministic) {
  const HardwareProfile p = AlibabaCloudProfile();
  EXPECT_DOUBLE_EQ(p.Measure(0.3, 10, 500, 42, 7),
                   p.Measure(0.3, 10, 500, 42, 7));
  EXPECT_NE(p.Measure(0.3, 10, 500, 42, 7), p.Measure(0.3, 10, 500, 42, 8));
}

std::vector<CostObservation> ProbePoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<CostObservation> probes;
  for (size_t i = 0; i < n; ++i) {
    CostObservation o;
    o.selectivity = rng.NextDouble();
    o.len_p = 3 + rng.NextDouble() * 20;
    o.len_t = 100 + rng.NextDouble() * 600;
    probes.push_back(o);
  }
  return probes;
}

TEST(HardwareProfileTest, TableFourOrdering) {
  // Paper Table IV: PKU (0.978) > Local (0.897) >> Alibaba (0.666). The
  // simulated profiles must reproduce the ordering and rough bands.
  const auto probes = ProbePoints(100, 61);
  auto local = CalibrateSimulated(LocalServerProfile(), probes, 1);
  auto cloud = CalibrateSimulated(AlibabaCloudProfile(), probes, 1);
  auto pku = CalibrateSimulated(PkuWeimingProfile(), probes, 1);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(cloud.ok());
  ASSERT_TRUE(pku.ok());
  EXPECT_GT(pku->model.r_squared(), local->model.r_squared());
  EXPECT_GT(local->model.r_squared(), cloud->model.r_squared());
  EXPECT_GT(pku->model.r_squared(), 0.9);
  EXPECT_LT(cloud->model.r_squared(), 0.9);
  EXPECT_GT(cloud->model.r_squared(), 0.2);
}

TEST(HardwareProfileTest, AllProfilesListed) {
  const auto profiles = AllHardwareProfiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "Local Server");
  EXPECT_EQ(profiles[1].name, "Alibaba Cloud");
  EXPECT_EQ(profiles[2].name, "PKU Weiming");
}

// ---------- Wall-clock calibration ----------

TEST(CalibrationTest, BuildProbePatternsMixesHitAndMiss) {
  workload::GeneratorOptions opt;
  opt.num_records = 200;
  const workload::Dataset ds = workload::GenerateWinLog(opt);
  const auto patterns = BuildProbePatterns(ds.records, 40, 7);
  ASSERT_EQ(patterns.size(), 40u);
  size_t hits = 0;
  for (const auto& p : patterns) {
    bool found = false;
    for (const auto& r : ds.records) {
      if (r.find(p) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (found) ++hits;
  }
  // Roughly half the probes are true substrings.
  EXPECT_GT(hits, 5u);
  EXPECT_LT(hits, 35u);
}

TEST(CalibrationTest, WallClockCalibrationFitsThisHost) {
  workload::GeneratorOptions opt;
  opt.num_records = 400;
  const workload::Dataset ds = workload::GenerateWinLog(opt);
  const auto patterns = BuildProbePatterns(ds.records, 30, 9);
  auto result = CalibrateWallClock(ds.records, patterns,
                                   SearchKernel::kStdFind, /*repeats=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->observations.size(), 30u);
  // Timing noise on shared CI machines is unbounded, so only structural
  // sanity is asserted: all measurements positive, selectivities valid,
  // and the fitted model predicts positive costs.
  for (const auto& o : result->observations) {
    EXPECT_GT(o.measured_us, 0.0);
    EXPECT_GE(o.selectivity, 0.0);
    EXPECT_LE(o.selectivity, 1.0);
  }
  EXPECT_GT(result->model.PredictUs(0.5, 10, ds.MeanRecordLength()), 0.0);
}

TEST(CalibrationTest, InputValidation) {
  EXPECT_FALSE(CalibrateWallClock({}, {"a", "b", "c", "d", "e"}).ok());
  EXPECT_FALSE(CalibrateWallClock({"rec"}, {"a"}).ok());
  EXPECT_FALSE(
      CalibrateSimulated(LocalServerProfile(), ProbePoints(3, 1), 1).ok());
}

}  // namespace
}  // namespace ciao
