// End-to-end integration tests of the CiaoSystem facade: the whole
// pipeline (select -> prefilter -> transport -> partial load -> query)
// must return exactly the counts a brute-force scan of the original JSON
// produces — for every dataset, every budget, every workload shape.

#include <gtest/gtest.h>

#include "core/system.h"
#include "sql/parser.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "workload/dataset.h"
#include "workload/micro_workloads.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

namespace ciao {
namespace {

uint64_t BruteForceCount(const std::vector<std::string>& records,
                         const Query& q) {
  uint64_t count = 0;
  for (const std::string& r : records) {
    auto v = json::Parse(r);
    if (v.ok() && EvaluateQuery(q, *v)) ++count;
  }
  return count;
}

struct SystemCase {
  workload::DatasetKind kind;
  double budget_us;
};

class SystemCorrectnessTest : public ::testing::TestWithParam<SystemCase> {};

TEST_P(SystemCorrectnessTest, CountsMatchBruteForceAtEveryBudget) {
  const SystemCase param = GetParam();
  workload::GeneratorOptions gen;
  gen.num_records = 600;
  gen.seed = 11;
  const workload::Dataset ds = workload::GenerateDataset(param.kind, gen);
  const auto pool = workload::TemplatesFor(param.kind).AllCandidates();

  workload::WorkloadSpec spec;
  spec.num_queries = 25;
  spec.distribution = workload::PredicateDistribution::kZipfian;
  spec.zipf_s = 2.0;
  spec.seed = 3;
  Workload wl = workload::GenerateWorkload(pool, spec);

  CiaoConfig config;
  config.budget_us = param.budget_us;
  config.chunk_size = 128;
  config.sample_size = 400;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());
  // Partition invariant: every record is either loaded or sidelined.
  const LoadStats& ls = (*system)->load_stats();
  EXPECT_EQ(ls.records_in, ds.records.size());
  EXPECT_EQ(ls.records_loaded + ls.records_sidelined, ls.records_in);
  EXPECT_EQ(ls.parse_errors, 0u);

  auto results = (*system)->ExecuteWorkload();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), wl.queries.size());
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    EXPECT_EQ((*results)[i].count, BruteForceCount(ds.records, wl.queries[i]))
        << wl.queries[i].ToSql() << " budget=" << param.budget_us;
  }

  const EndToEndReport report = (*system)->BuildReport("test");
  EXPECT_EQ(report.queries_run, wl.queries.size());
  EXPECT_GE(report.loading_seconds, 0.0);
  if (param.budget_us == 0.0) {
    // Baseline: nothing pushed, everything loaded, no skipping.
    EXPECT_EQ(report.predicates_pushed, 0u);
    EXPECT_FALSE(report.partial_loading);
    EXPECT_EQ(report.loading_ratio, 1.0);
    EXPECT_EQ(report.queries_skipping, 0u);
  } else {
    EXPECT_GT(report.predicates_pushed, 0u);
    EXPECT_GT(report.prefilter_seconds, 0.0);
  }
}

std::string CaseName(const ::testing::TestParamInfo<SystemCase>& info) {
  std::string name(workload::DatasetKindName(info.param.kind));
  name += "_budget_";
  name += std::to_string(static_cast<int>(info.param.budget_us * 10));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSweep, SystemCorrectnessTest,
    ::testing::Values(SystemCase{workload::DatasetKind::kWinLog, 0.0},
                      SystemCase{workload::DatasetKind::kWinLog, 0.5},
                      SystemCase{workload::DatasetKind::kWinLog, 3.0},
                      SystemCase{workload::DatasetKind::kWinLog, 50.0},
                      SystemCase{workload::DatasetKind::kYelp, 0.0},
                      SystemCase{workload::DatasetKind::kYelp, 3.0},
                      SystemCase{workload::DatasetKind::kYcsb, 0.0},
                      SystemCase{workload::DatasetKind::kYcsb, 5.0}),
    CaseName);

TEST(SystemTest, BudgetIsRespectedByThePlan) {
  const workload::Dataset ds = workload::GenerateWinLog({400, 13});
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  Workload wl = workload::WorkloadA(pool, 9);
  wl.queries.resize(20);

  for (const double budget : {0.0, 0.5, 1.0, 3.0, 9.0}) {
    CiaoConfig config;
    config.budget_us = budget;
    config.sample_size = 300;
    auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                        CostModel::Default());
    ASSERT_TRUE(system.ok());
    EXPECT_LE((*system)->plan().total_cost_us, budget + 1e-9);
  }
}

TEST(SystemTest, LargerBudgetsNeverReduceObjective) {
  const workload::Dataset ds = workload::GenerateYelp({400, 17});
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYelp).AllCandidates();
  Workload wl = workload::WorkloadB(pool, 5);
  wl.queries.resize(30);

  double prev_objective = -1.0;
  for (const double budget : {0.0, 1.0, 2.0, 5.0, 10.0, 30.0}) {
    CiaoConfig config;
    config.budget_us = budget;
    config.sample_size = 300;
    auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                        CostModel::Default());
    ASSERT_TRUE(system.ok());
    const double objective = (*system)->plan().objective_value;
    EXPECT_GE(objective, prev_objective - 1e-9) << "budget=" << budget;
    prev_objective = objective;
  }
}

TEST(SystemTest, ManualBootstrapMicroWorkloadSelectivity) {
  const workload::Dataset ds = workload::GenerateWinLog({800, 23});
  const auto tier = workload::MicroTierPredicates(0.01);
  const workload::MicroWorkload mw =
      workload::BuildSelectivityWorkload(tier, "0.01");

  CiaoConfig config;
  config.chunk_size = 200;
  config.sample_size = 500;
  auto system = CiaoSystem::BootstrapManual(
      ds.schema, mw.workload, mw.push_down, ds.records, config,
      CostModel::Default());
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  // Pushed predicates cover every query -> partial loading engaged.
  EXPECT_TRUE((*system)->partial_loading_enabled());
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());
  // Two predicates of sel 0.01: loading ratio ~ 1-(1-.01)^2 ~ 0.02.
  EXPECT_LT((*system)->load_stats().LoadingRatio(), 0.08);

  auto results = (*system)->ExecuteWorkload();
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < mw.workload.queries.size(); ++i) {
    EXPECT_EQ((*results)[i].count,
              BruteForceCount(ds.records, mw.workload.queries[i]));
    EXPECT_EQ((*results)[i].plan, PlanKind::kSkippingScan);
  }
}

TEST(SystemTest, UncoveredWorkloadDisablesPartialLoadingButStillSkips) {
  const workload::Dataset ds = workload::GenerateWinLog({500, 27});
  const auto pool = workload::MicroTierPredicates(0.15);
  const workload::MicroWorkload mw =
      workload::BuildOverlapWorkload(workload::OverlapLevel::kLow, pool);

  CiaoConfig config;
  config.sample_size = 400;
  auto system = CiaoSystem::BootstrapManual(
      ds.schema, mw.workload, mw.push_down, ds.records, config,
      CostModel::Default());
  ASSERT_TRUE(system.ok());
  EXPECT_FALSE((*system)->partial_loading_enabled());

  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());
  EXPECT_EQ((*system)->load_stats().LoadingRatio(), 1.0);  // full load
  EXPECT_EQ((*system)->catalog().raw_rows(), 0u);

  auto results = (*system)->ExecuteWorkload();
  ASSERT_TRUE(results.ok());
  // q0/q1 contain pushed predicates -> skipping plans; all counts right.
  size_t skipping = 0;
  for (size_t i = 0; i < mw.workload.queries.size(); ++i) {
    EXPECT_EQ((*results)[i].count,
              BruteForceCount(ds.records, mw.workload.queries[i]));
    if ((*results)[i].plan == PlanKind::kSkippingScan) ++skipping;
  }
  EXPECT_EQ(skipping, 2u);
}

TEST(SystemTest, IncrementalIngestAcrossMultipleCalls) {
  const workload::Dataset ds = workload::GenerateYcsb({300, 29});
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYcsb).AllCandidates();
  workload::WorkloadSpec spec;
  spec.num_queries = 10;
  spec.seed = 7;
  Workload wl = workload::GenerateWorkload(pool, spec);

  CiaoConfig config;
  config.budget_us = 10.0;
  config.chunk_size = 64;
  config.sample_size = 200;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  ASSERT_TRUE(system.ok());

  // Ingest in three batches, as a stream of client uploads.
  const size_t third = ds.records.size() / 3;
  std::vector<std::string> part1(ds.records.begin(),
                                 ds.records.begin() + third);
  std::vector<std::string> part2(ds.records.begin() + third,
                                 ds.records.begin() + 2 * third);
  std::vector<std::string> part3(ds.records.begin() + 2 * third,
                                 ds.records.end());
  ASSERT_TRUE((*system)->IngestRecords(part1).ok());
  ASSERT_TRUE((*system)->IngestRecords(part2).ok());
  ASSERT_TRUE((*system)->IngestRecords(part3).ok());
  EXPECT_EQ((*system)->load_stats().records_in, ds.records.size());

  auto results = (*system)->ExecuteWorkload();
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    EXPECT_EQ((*results)[i].count, BruteForceCount(ds.records, wl.queries[i]));
  }
}

TEST(SystemTest, KeepZeroGainMatchesPaperAlgorithm) {
  // The paper's Algorithms 1/2 keep adding predicates while budget
  // remains even at zero marginal gain; our default stops. Both must
  // yield the same f(S); keep_zero_gain may only spend more budget.
  const workload::Dataset ds = workload::GenerateWinLog({300, 71});
  const auto pool = workload::MicroTierPredicates(0.15);
  Workload wl;
  Query q;
  q.name = "q0";
  q.clauses = {pool[0]};
  wl.queries.push_back(q);  // single query: extra predicates gain nothing

  for (const bool keep : {false, true}) {
    CiaoConfig config;
    config.budget_us = 1000.0;  // room for many predicates
    config.sample_size = 300;
    config.keep_zero_gain = keep;
    auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                        CostModel::Default());
    ASSERT_TRUE(system.ok());
    if (keep) {
      // Paper-faithful: budget allows pushing clauses that gain nothing
      // (there is only one candidate clause here, so sizes still match;
      // the flag is exercised through the greedy loop).
      EXPECT_GE((*system)->registry().size(), 1u);
    } else {
      EXPECT_EQ((*system)->registry().size(), 1u);
    }
    EXPECT_GT((*system)->plan().objective_value, 0.0);
  }
}

TEST(SystemTest, SqlParsedQueriesExecute) {
  const workload::Dataset ds = workload::GenerateYelp({400, 73});
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYelp).AllCandidates();
  workload::WorkloadSpec spec;
  spec.num_queries = 10;
  spec.seed = 3;
  Workload wl = workload::GenerateWorkload(pool, spec);

  CiaoConfig config;
  config.budget_us = 20.0;
  config.sample_size = 300;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());

  auto q = sql::ParseQuery(
      "SELECT COUNT(*) FROM reviews WHERE stars = 5 AND text LIKE "
      "'%delicious%'");
  ASSERT_TRUE(q.ok());
  auto result = (*system)->ExecuteQuery(*q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, BruteForceCount(ds.records, *q));

  // IN-list through the full pipeline.
  auto q2 = sql::ParseWhere("stars IN (4, 5)");
  ASSERT_TRUE(q2.ok());
  auto r2 = (*system)->ExecuteQuery(*q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->count, BruteForceCount(ds.records, *q2));
}

TEST(SystemTest, ReportFormatting) {
  EndToEndReport r;
  r.label = "demo";
  r.budget_us = 1.5;
  r.predicates_pushed = 3;
  r.partial_loading = true;
  r.prefilter_seconds = 0.5;
  r.loading_seconds = 1.0;
  r.query_seconds = 2.0;
  r.loading_ratio = 0.25;
  r.queries_run = 10;
  r.queries_skipping = 7;
  EXPECT_DOUBLE_EQ(r.TotalSeconds(), 3.5);
  const std::string table = FormatReports({r});
  EXPECT_NE(table.find("demo"), std::string::npos);
  EXPECT_NE(table.find("7/10"), std::string::npos);
  EXPECT_NE(table.find("0.250"), std::string::npos);

  TablePrinter printer({"col_a", "b"});
  printer.AddRow({"1", "two"});
  printer.AddRow({"longer", "x"});
  const std::string text = printer.ToString();
  EXPECT_NE(text.find("col_a"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
}

}  // namespace
}  // namespace ciao
