// Concurrent ingest pipeline: N prefilter clients + M loader workers over
// a bounded transport must produce exactly the query results of the
// sequential paper pipeline — same counts, same loading decisions — for
// every workload, at every pool geometry.

#include <gtest/gtest.h>

#include "client/fleet.h"
#include "core/system.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/partial_loader.h"
#include "storage/transport.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

namespace ciao {
namespace {

uint64_t BruteForceCount(const std::vector<std::string>& records,
                         const Query& q) {
  uint64_t count = 0;
  for (const std::string& r : records) {
    auto v = json::Parse(r);
    if (v.ok() && EvaluateQuery(q, *v)) ++count;
  }
  return count;
}

struct PipelineFixture {
  workload::Dataset ds;
  Workload wl;

  explicit PipelineFixture(size_t num_records = 800) {
    workload::GeneratorOptions gen;
    gen.num_records = num_records;
    gen.seed = 19;
    ds = workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
    const auto pool =
        workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
    workload::WorkloadSpec spec;
    spec.num_queries = 20;
    spec.seed = 5;
    wl = workload::GenerateWorkload(pool, spec);
  }

  Result<std::unique_ptr<CiaoSystem>> Boot(const IngestOptions& ingest,
                                           size_t scan_threads = 1) const {
    CiaoConfig config;
    config.budget_us = 3.0;
    config.chunk_size = 100;
    config.sample_size = 400;
    config.ingest = ingest;
    config.query_scan_threads = scan_threads;
    return CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                 CostModel::Default());
  }
};

TEST(ParallelIngestTest, PoolGeometriesMatchSequentialResults) {
  PipelineFixture fx;

  // Reference: the sequential paper pipeline.
  auto sequential = fx.Boot(IngestOptions{});
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  ASSERT_TRUE((*sequential)->IngestRecords(fx.ds.records).ok());
  auto sequential_results = (*sequential)->ExecuteWorkload();
  ASSERT_TRUE(sequential_results.ok());
  const LoadStats& seq_stats = (*sequential)->load_stats();

  const IngestOptions geometries[] = {
      {2, 1, 4},   // clients outnumber the single loader
      {1, 3, 4},   // loader pool drains one client
      {4, 4, 8},   // the acceptance-criteria geometry
      {4, 4, 1},   // minimal queue: maximal backpressure interleaving
  };
  for (const IngestOptions& ingest : geometries) {
    SCOPED_TRACE("clients=" + std::to_string(ingest.num_clients) +
                 " loaders=" + std::to_string(ingest.num_loaders) +
                 " capacity=" + std::to_string(ingest.queue_capacity));
    auto system = fx.Boot(ingest);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    ASSERT_TRUE((*system)->IngestRecords(fx.ds.records).ok());

    // Identical per-record loading decisions: the concurrent pipeline
    // partitions chunk-wise, so chunk contents match the sequential path.
    const LoadStats& stats = (*system)->load_stats();
    EXPECT_EQ(stats.records_in, seq_stats.records_in);
    EXPECT_EQ(stats.records_loaded, seq_stats.records_loaded);
    EXPECT_EQ(stats.records_sidelined, seq_stats.records_sidelined);
    EXPECT_EQ(stats.parse_errors, 0u);

    auto results = (*system)->ExecuteWorkload();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), sequential_results->size());
    for (size_t i = 0; i < results->size(); ++i) {
      EXPECT_EQ((*results)[i].count, (*sequential_results)[i].count)
          << fx.wl.queries[i].ToSql();
      EXPECT_EQ((*results)[i].plan, (*sequential_results)[i].plan);
      EXPECT_EQ((*results)[i].count,
                BruteForceCount(fx.ds.records, fx.wl.queries[i]));
    }
  }
}

TEST(ParallelIngestTest, ParallelScanMatchesSequentialScan) {
  PipelineFixture fx;
  auto system = fx.Boot(IngestOptions{4, 4, 8}, /*scan_threads=*/4);
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(fx.ds.records).ok());
  // Many segments spread over the catalog shards.
  EXPECT_GT((*system)->catalog().num_segments(), 1u);
  EXPECT_GT((*system)->catalog().num_shards(), 1u);

  auto results = (*system)->ExecuteWorkload();
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].count,
              BruteForceCount(fx.ds.records, fx.wl.queries[i]))
        << fx.wl.queries[i].ToSql();
  }
}

TEST(ParallelIngestTest, MergedStatsAndReportAreCoherent) {
  PipelineFixture fx(600);
  auto system = fx.Boot(IngestOptions{3, 2, 4});
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(fx.ds.records).ok());

  const PrefilterStats prefilter = (*system)->prefilter_stats();
  EXPECT_EQ(prefilter.records_filtered, fx.ds.records.size());
  EXPECT_GT(prefilter.seconds, 0.0);
  EXPECT_GT((*system)->ingest_wall_seconds(), 0.0);

  const EndToEndReport report = (*system)->BuildReport("concurrent");
  EXPECT_EQ(report.ingest_clients, 3u);
  EXPECT_EQ(report.ingest_loaders, 2u);
  EXPECT_GT(report.ingest_wall_seconds, 0.0);
  EXPECT_GT(report.prefilter_seconds, 0.0);
}

TEST(ParallelIngestTest, IncrementalConcurrentIngestAccumulates) {
  PipelineFixture fx(600);
  auto system = fx.Boot(IngestOptions{2, 2, 4});
  ASSERT_TRUE(system.ok());
  const size_t half = fx.ds.records.size() / 2;
  std::vector<std::string> part1(fx.ds.records.begin(),
                                 fx.ds.records.begin() + half);
  std::vector<std::string> part2(fx.ds.records.begin() + half,
                                 fx.ds.records.end());
  ASSERT_TRUE((*system)->IngestRecords(part1).ok());
  ASSERT_TRUE((*system)->IngestRecords(part2).ok());
  EXPECT_EQ((*system)->load_stats().records_in, fx.ds.records.size());

  auto results = (*system)->ExecuteWorkload();
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].count,
              BruteForceCount(fx.ds.records, fx.wl.queries[i]));
  }
}

TEST(ParallelIngestTest, ClientAndLoaderPoolsComposeDirectly) {
  // Drive the pools without the CiaoSystem facade, the way a custom
  // server embedding would: explicit registry, transport, catalog.
  PipelineFixture fx(500);
  PredicateRegistry registry;
  const auto pushed = workload::MicroTierPredicates(0.15);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(registry.Register(pushed[i], 0.15, 1.0).ok());
  }

  TableCatalog catalog(fx.ds.schema);
  PartialLoader loader(fx.ds.schema, registry.size());
  BoundedTransport transport(/*capacity=*/4);
  transport.AddProducers(1);

  LoaderPoolOptions loader_options;
  loader_options.num_loaders = 3;
  LoaderPool loaders(&loader, &transport, &catalog, loader_options);
  loaders.Start();

  FleetOptions client_options;
  client_options.chunk_size = 50;
  FleetScheduler clients(&registry, &transport,
                         {{"c0"}, {"c1"}, {"c2"}}, client_options);
  ASSERT_TRUE(clients.SendRecords(fx.ds.records).ok());
  transport.ProducerDone();
  ASSERT_TRUE(loaders.Join().ok());

  EXPECT_EQ(loaders.stats().records_in, fx.ds.records.size());
  EXPECT_EQ(clients.stats().records_filtered, fx.ds.records.size());
  EXPECT_EQ(catalog.loaded_rows() + catalog.raw_rows(),
            fx.ds.records.size());

  QueryExecutor executor(&catalog, &registry);
  for (size_t p = 0; p < 3; ++p) {
    Query q;
    q.clauses = {pushed[p]};
    auto result = executor.Execute(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, BruteForceCount(fx.ds.records, q)) << q.ToSql();
  }
}

}  // namespace
}  // namespace ciao
