// Workload-driven column grouping: the affinity miner's clustering
// decisions, the group-granular executor differential (grouped layouts
// must be byte-identical to the legacy per-column body on every plan
// shape), and the regroup/query race (run under TSan in CI). The
// load-bearing assertions:
//
//  * co-accessed columns merge, disjointly-accessed fat columns split,
//    cold columns pool, and max_groups is always respected,
//  * counts AND per-column projection checksums are identical across
//    legacy / single-group / per-column / randomly-partitioned layouts,
//    across full-scan vs skipping vs stale-epoch plans, and across
//    row-wise vs vectorized evaluation,
//  * a forced regroup publishes a grouped physical layout, keeps every
//    result exact, and charges the spent-time side of the regret ledger.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/file_reader.h"
#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "columnar/record_batch.h"
#include "common/random.h"
#include "core/replan.h"
#include "core/system.h"
#include "engine/executor.h"
#include "engine/typed_eval.h"
#include "json/parser.h"
#include "json/writer.h"
#include "predicate/registry.h"
#include "predicate/semantic_eval.h"
#include "storage/column_grouping.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

using columnar::ColumnGroupLayout;

// ---------- ColumnAccessProfile ----------

TEST(ColumnAccessProfileTest, PoolsMassByAccessSetAndDropsUnknowns) {
  const columnar::Schema schema({{"a", columnar::ColumnType::kInt64},
                                 {"b", columnar::ColumnType::kString},
                                 {"c", columnar::ColumnType::kDouble}});
  Workload wl;
  {
    Query q;  // predicate on a, projects b -> {0, 1}
    q.clauses = {Clause::Of(SimplePredicate::KeyValue("a", json::Value(1)))};
    q.projected = {"b"};
    q.frequency = 2.0;
    wl.queries.push_back(q);
  }
  {
    Query q;  // same access set via different shape: predicate b, project a
    q.clauses = {Clause::Of(SimplePredicate::Exact("b", "x"))};
    q.projected = {"a", "a", "nope"};  // dup + unknown name are dropped
    q.frequency = 1.0;
    wl.queries.push_back(q);
  }
  {
    Query q;  // {2} alone
    q.clauses = {Clause::Of(SimplePredicate::Presence("c"))};
    q.frequency = 0.5;
    wl.queries.push_back(q);
  }
  {
    Query q;  // touches nothing in-schema: contributes no entry
    q.clauses = {Clause::Of(SimplePredicate::Presence("ghost"))};
    q.frequency = 9.0;
    wl.queries.push_back(q);
  }

  const auto profile = ColumnAccessProfile::FromWorkload(wl, schema);
  EXPECT_EQ(profile.num_fields, 3u);
  ASSERT_EQ(profile.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.TotalWeight(), 3.5);
  for (const auto& entry : profile.entries) {
    if (entry.columns == std::vector<uint32_t>{0, 1}) {
      EXPECT_DOUBLE_EQ(entry.weight, 3.0);
    } else {
      EXPECT_EQ(entry.columns, std::vector<uint32_t>{2});
      EXPECT_DOUBLE_EQ(entry.weight, 0.5);
    }
  }
}

// ---------- MineColumnGrouping ----------

ColumnAccessProfile MakeProfile(
    size_t num_fields,
    std::vector<std::pair<double, std::vector<uint32_t>>> entries) {
  ColumnAccessProfile profile;
  profile.num_fields = num_fields;
  for (auto& [w, cols] : entries) {
    profile.entries.push_back({w, std::move(cols)});
  }
  return profile;
}

std::vector<uint32_t> GroupOf(const ColumnGroupLayout& layout, uint32_t col) {
  for (const auto& group : layout.groups) {
    if (std::find(group.begin(), group.end(), col) != group.end()) {
      return group;
    }
  }
  return {};
}

TEST(MineColumnGroupingTest, CoAccessedColumnsMergeColdColumnsPool) {
  // Columns 0,1 always read together; 2,3 never read. Expect {0,1} in one
  // group and the cold pair pooled in another.
  const auto profile = MakeProfile(4, {{10.0, {0, 1}}});
  const std::vector<double> bytes = {8.0, 8.0, 120.0, 120.0};
  ColumnGroupingOptions opt;
  opt.min_saving_fraction = 0.0;
  const auto plan = MineColumnGrouping(profile, bytes, 4096, opt);
  ASSERT_FALSE(plan.trivial);
  ASSERT_TRUE(plan.layout.Validate(4).ok());
  EXPECT_EQ(GroupOf(plan.layout, 0), GroupOf(plan.layout, 1));
  EXPECT_EQ(GroupOf(plan.layout, 2), GroupOf(plan.layout, 3));
  EXPECT_NE(GroupOf(plan.layout, 0), GroupOf(plan.layout, 2));
  // The hot pair never decodes the fat cold columns: big estimated win.
  EXPECT_GT(plan.saving_fraction, 0.5);
  EXPECT_LT(plan.grouped_bytes_per_row, plan.baseline_bytes_per_row);
}

TEST(MineColumnGroupingTest, DisjointlyAccessedFatColumnsStaySplit) {
  // Two query populations each read one fat column. Merging would force
  // each to decode the other's bytes, far above the chunk overhead.
  const auto profile = MakeProfile(2, {{5.0, {0}}, {5.0, {1}}});
  const std::vector<double> bytes = {200.0, 200.0};
  ColumnGroupingOptions opt;
  opt.min_saving_fraction = 0.0;
  const auto plan = MineColumnGrouping(profile, bytes, 4096, opt);
  ASSERT_FALSE(plan.trivial);
  EXPECT_EQ(plan.layout.groups.size(), 2u);
  EXPECT_NE(GroupOf(plan.layout, 0), GroupOf(plan.layout, 1));
}

TEST(MineColumnGroupingTest, ChunkOverheadTipsTheMergeTradeoff) {
  // Mixed access: mass 5 reads both columns, mass 1 reads only column 0.
  // Merging saves the heavy co-access mass one chunk touch per query but
  // makes the column-0-only mass decode column 1's bytes. With a large
  // per-chunk overhead the saving wins; with a negligible one it loses.
  const auto profile = MakeProfile(2, {{5.0, {0, 1}}, {1.0, {0}}});
  const std::vector<double> bytes = {8.0, 100.0};
  ColumnGroupingOptions opt;
  opt.min_saving_fraction = 0.0;

  opt.chunk_overhead_bytes = 4096.0;  // 64 B/row at 64 rows/group
  const auto merged = MineColumnGrouping(profile, bytes, 64, opt);
  EXPECT_EQ(GroupOf(merged.layout, 0), GroupOf(merged.layout, 1));

  opt.chunk_overhead_bytes = 0.0625;  // ~0.001 B/row: overhead-free
  const auto split = MineColumnGrouping(profile, bytes, 64, opt);
  EXPECT_NE(GroupOf(split.layout, 0), GroupOf(split.layout, 1));
}

TEST(MineColumnGroupingTest, MaxGroupsCapForcesLeastDamagingMerges) {
  const auto profile = MakeProfile(
      6, {{1.0, {0}}, {1.0, {1}}, {1.0, {2}}, {1.0, {3}}, {1.0, {4, 5}}});
  const std::vector<double> bytes(6, 100.0);
  ColumnGroupingOptions opt;
  opt.max_groups = 2;
  opt.min_saving_fraction = 0.0;
  const auto plan = MineColumnGrouping(profile, bytes, 4096, opt);
  ASSERT_TRUE(plan.layout.Validate(6).ok());
  EXPECT_LE(plan.layout.groups.size(), 2u);
}

TEST(MineColumnGroupingTest, ForceSingleGroupIsTheAblationBaseline) {
  const auto profile = MakeProfile(3, {{1.0, {0}}});
  ColumnGroupingOptions opt;
  opt.force_single_group = true;
  const auto plan =
      MineColumnGrouping(profile, {8.0, 8.0, 8.0}, 4096, opt);
  ASSERT_FALSE(plan.trivial);
  ASSERT_EQ(plan.layout.groups.size(), 1u);
  EXPECT_EQ(plan.layout.groups[0], (std::vector<uint32_t>{0, 1, 2}));
}

TEST(MineColumnGroupingTest, TrivialWhenSavingBelowFloorOrNoSignal) {
  // High floor: a real saving exists but is below the installation bar.
  const auto profile = MakeProfile(4, {{10.0, {0, 1}}});
  const std::vector<double> bytes = {8.0, 8.0, 120.0, 120.0};
  ColumnGroupingOptions opt;
  opt.min_saving_fraction = 0.99;
  EXPECT_TRUE(MineColumnGrouping(profile, bytes, 4096, opt).trivial);

  // No workload signal at all.
  ColumnAccessProfile empty;
  empty.num_fields = 4;
  ColumnGroupingOptions loose;
  loose.min_saving_fraction = 0.0;
  EXPECT_TRUE(MineColumnGrouping(empty, bytes, 4096, loose).trivial);
}

TEST(ColumnGroupingTest, DefaultChunkOverheadFloorsWithoutProfile) {
  EXPECT_GE(DefaultChunkOverheadBytes(nullptr), 512.0);
}

// ---------- EstimateColumnBytes ----------

TEST(ColumnGroupingTest, EstimateColumnBytesRanksFatColumns) {
  const workload::Dataset ds = workload::GenerateWinLog({300, 13});
  TableCatalog catalog(ds.schema);
  columnar::BatchBuilder builder(ds.schema);
  for (const std::string& r : ds.records) {
    ASSERT_TRUE(builder.AppendSerialized(r).ok());
  }
  columnar::TableWriter writer(ds.schema);
  ASSERT_TRUE(writer.AppendRowGroup(builder.Finish(), BitVectorSet()).ok());
  catalog.AddSegment(std::move(writer).Finish(), ds.records.size());

  auto bytes = EstimateColumnBytes(catalog);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ASSERT_EQ(bytes->size(), 4u);
  for (const double b : *bytes) EXPECT_GT(b, 0.0);
  // info (col 3) is the fat free-text column; level (col 1) is a tiny
  // dictionary-coded enum.
  EXPECT_GT((*bytes)[3], (*bytes)[1]);

  TableCatalog empty(ds.schema);
  EXPECT_TRUE(EstimateColumnBytes(empty).status().IsNotFound());
}

// ---------- Differential: grouped layouts vs the legacy body ----------

/// One catalog per physical layout over identical logical content.
struct LayoutFixture {
  workload::Dataset ds;
  std::vector<json::Value> parsed;
  PredicateRegistry registry;
  std::vector<Clause> pushed;
  /// [0] = legacy per-column body; the rest are v4 grouped layouts.
  std::vector<std::unique_ptr<TableCatalog>> catalogs;
  std::vector<std::string> names;

  explicit LayoutFixture(size_t n, uint64_t seed, bool exact_bits,
                         size_t rows_per_group = 96)
      : ds(workload::GenerateWinLog({n, seed})) {
    Init(exact_bits, rows_per_group);
  }

  // gtest fatal assertions require a void function, so the real setup
  // lives outside the constructor.
  void Init(bool exact_bits, size_t rows_per_group) {
    for (const std::string& r : ds.records) {
      parsed.push_back(*json::Parse(r));
    }
    pushed = workload::MicroTierPredicates(0.35);
    pushed.resize(2);
    for (const Clause& c : pushed) {
      ASSERT_TRUE(registry.Register(c, 0.35, 1.0).ok());
    }

    // Batches + annotations once; re-encode per layout.
    std::vector<columnar::RecordBatch> batches;
    std::vector<BitVectorSet> annotations;
    columnar::BatchBuilder builder(ds.schema);
    for (size_t start = 0; start < ds.records.size();
         start += rows_per_group) {
      const size_t end = std::min(ds.records.size(), start + rows_per_group);
      for (size_t i = start; i < end; ++i) {
        ASSERT_TRUE(builder.AppendSerialized(ds.records[i]).ok());
      }
      columnar::RecordBatch batch = builder.Finish();
      BitVectorSet bits(registry.size(), batch.num_rows());
      for (size_t p = 0; p < registry.size(); ++p) {
        if (exact_bits) {
          Query probe;
          probe.clauses = {registry.Get(static_cast<uint32_t>(p)).clause};
          auto compiled = CompiledTypedQuery::Compile(probe, ds.schema);
          ASSERT_TRUE(compiled.ok());
          for (size_t r = 0; r < batch.num_rows(); ++r) {
            if (compiled->Matches(batch, r)) {
              bits.mutable_vector(p)->Set(r, true);
            }
          }
        } else {
          const auto& program = registry.Get(static_cast<uint32_t>(p)).program;
          for (size_t r = start; r < end; ++r) {
            if (program.Matches(ds.records[r])) {
              bits.mutable_vector(p)->Set(r - start, true);
            }
          }
        }
      }
      annotations.push_back(std::move(bits));
      batches.push_back(std::move(batch));
    }

    const size_t nf = ds.schema.num_fields();
    std::vector<std::pair<std::string, ColumnGroupLayout>> layouts;
    layouts.emplace_back("legacy", ColumnGroupLayout{});
    layouts.emplace_back("single", ColumnGroupLayout::SingleGroup(nf));
    layouts.emplace_back("percol", ColumnGroupLayout::PerColumn(nf));
    ColumnGroupLayout mined;  // predicate col with a small col, rest pooled
    mined.groups = {{1, 3}, {0, 2}};
    layouts.emplace_back("mined", std::move(mined));

    for (auto& [name, layout] : layouts) {
      auto catalog = std::make_unique<TableCatalog>(ds.schema);
      columnar::TableWriter writer(ds.schema, layout);
      for (size_t b = 0; b < batches.size(); ++b) {
        ASSERT_TRUE(writer.AppendRowGroup(batches[b], annotations[b]).ok());
      }
      ColumnarSegment segment;
      segment.file_bytes = std::move(writer).Finish();
      segment.num_rows = ds.records.size();
      segment.annotations_exact = exact_bits;
      catalog->AddSegment(std::move(segment));
      catalogs.push_back(std::move(catalog));
      names.push_back(name);
    }
  }

  uint64_t BruteForceCount(const Query& q) const {
    uint64_t count = 0;
    for (const json::Value& v : parsed) {
      if (EvaluateQuery(q, v)) ++count;
    }
    return count;
  }
};

TEST(GroupedDifferentialTest, AllLayoutsAndPlansAgreeOnCountsAndHashes) {
  for (const bool exact_bits : {false, true}) {
    LayoutFixture fx(500, exact_bits ? 41 : 43, exact_bits);
    const auto other = workload::MicroTierPredicates(0.15);
    const std::vector<std::string> cols = {"time", "level", "source", "info"};
    Rng rng(exact_bits ? 7u : 11u);

    for (int iter = 0; iter < 12; ++iter) {
      Query q;
      q.name = "fz" + std::to_string(iter);
      std::vector<uint32_t> pushed_ids;
      const size_t j = rng.NextBounded(fx.pushed.size());
      q.clauses = {fx.pushed[j]};
      pushed_ids.push_back(static_cast<uint32_t>(j));
      if (j == 0 && rng.NextBool()) {
        q.clauses.push_back(fx.pushed[1]);
        pushed_ids.push_back(1);
      }
      if (rng.NextBool(0.3)) {
        q.clauses.push_back(other[rng.NextBounded(other.size())]);
      }
      // Random projection set; sometimes empty (plain COUNT), sometimes
      // with an unknown column (projects NULL everywhere).
      for (const std::string& c : cols) {
        if (rng.NextBool(0.4)) q.projected.push_back(c);
      }
      if (rng.NextBool(0.2)) q.projected.push_back("no_such_column");

      const uint64_t expected = fx.BruteForceCount(q);
      std::vector<uint64_t> reference_hashes;
      bool have_reference = false;

      for (size_t c = 0; c < fx.catalogs.size(); ++c) {
        for (const QueryEvalMode mode :
             {QueryEvalMode::kVectorized, QueryEvalMode::kRowwise}) {
          ExecutorOptions opt;
          opt.query_eval = mode;
          QueryExecutor executor(fx.catalogs[c].get(), &fx.registry, opt);
          const std::string label =
              q.ToSql() + " layout=" + fx.names[c] +
              " mode=" + std::string(QueryEvalModeName(mode));

          auto full = executor.ExecuteFullScan(q);
          ASSERT_TRUE(full.ok()) << label;
          EXPECT_EQ(full->count, expected) << label;
          auto skip = executor.Execute(q);
          ASSERT_TRUE(skip.ok()) << label;
          EXPECT_EQ(skip->plan, PlanKind::kSkippingScan) << label;
          EXPECT_EQ(skip->count, expected) << label;
          // Stale-epoch view: annotations are epoch 0, the query plans
          // against epoch 7 — bits must be distrusted, results exact.
          auto stale = executor.ExecuteWithSkipping(
              q, pushed_ids, /*epoch_id=*/7);
          ASSERT_TRUE(stale.ok()) << label;
          EXPECT_EQ(stale->count, expected) << label;
          EXPECT_GT(stale->stats.groups_stale_annotations, 0u) << label;

          ASSERT_EQ(full->projected_hashes.size(), q.projected.size());
          ASSERT_EQ(skip->projected_hashes.size(), q.projected.size());
          if (!have_reference) {
            reference_hashes = full->projected_hashes;
            have_reference = true;
          }
          // The projection checksums are layout/plan/eval-mode invariant.
          EXPECT_EQ(full->projected_hashes, reference_hashes) << label;
          EXPECT_EQ(skip->projected_hashes, reference_hashes) << label;
          EXPECT_EQ(stale->projected_hashes, reference_hashes) << label;
        }
      }
    }
  }
}

TEST(GroupedDifferentialTest, GroupGranularDecodePaysOnlyCoveringChunks) {
  // Exact bits + fully-pushed query: the skipping path counts from the
  // bits and decodes only the projected columns' chunks. On the
  // per-column layout that is exactly one column; on the single-group
  // layout the whole row rides along as waste.
  LayoutFixture fx(500, 47, /*exact_bits=*/true);
  Query q;
  q.clauses = {fx.pushed[0]};
  q.projected = {"level"};

  auto run = [&](size_t catalog_index) {
    QueryExecutor executor(fx.catalogs[catalog_index].get(), &fx.registry);
    auto result = executor.Execute(q);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, fx.BruteForceCount(q));
    return result->stats;
  };

  const ScanStats single = run(1);   // SingleGroup: whole-row chunks
  const ScanStats percol = run(2);   // PerColumn: one chunk per column
  ASSERT_GT(single.bytes_decoded, 0u);
  ASSERT_GT(percol.bytes_decoded, 0u);
  // Whole-row chunks decode every column; the decomposed layout decodes
  // only `level` — strictly fewer bytes, zero decode-to-skip waste.
  EXPECT_GT(single.columns_decoded, percol.columns_decoded);
  EXPECT_GT(single.bytes_decoded, percol.bytes_decoded);
  EXPECT_GT(single.bytes_decode_waste, 0u);
  EXPECT_EQ(percol.bytes_decode_waste, 0u);
}

// ---------- Random wide-schema fuzz (typed columns, random partitions) ----

TEST(GroupedDifferentialTest, RandomSchemasAndPartitionsStayByteIdentical) {
  Rng rng(2026);
  for (int round = 0; round < 6; ++round) {
    // Random schema: 5-10 columns of random types.
    const size_t nf = 5 + rng.NextBounded(6);
    std::vector<columnar::Field> fields;
    for (size_t c = 0; c < nf; ++c) {
      const auto type = static_cast<columnar::ColumnType>(rng.NextBounded(4));
      fields.push_back({"c" + std::to_string(c), type});
    }
    const columnar::Schema schema(fields);

    // Random records as JSON (occasionally missing fields -> nulls).
    std::vector<std::string> records;
    for (size_t r = 0; r < 240; ++r) {
      json::Value rec{json::Object{}};
      for (size_t c = 0; c < nf; ++c) {
        if (rng.NextBool(0.1)) continue;
        switch (fields[c].type) {
          case columnar::ColumnType::kInt64:
            rec.Add(fields[c].name, json::Value(static_cast<int64_t>(
                                        rng.NextBounded(5))));
            break;
          case columnar::ColumnType::kDouble:
            rec.Add(fields[c].name, json::Value(rng.NextDouble() * 10));
            break;
          case columnar::ColumnType::kBool:
            rec.Add(fields[c].name, json::Value(rng.NextBool()));
            break;
          case columnar::ColumnType::kString:
            rec.Add(fields[c].name,
                    json::Value("s" + std::to_string(rng.NextBounded(4))));
            break;
        }
      }
      records.push_back(json::Write(rec));
    }

    columnar::BatchBuilder builder(schema);
    for (const std::string& r : records) {
      ASSERT_TRUE(builder.AppendSerialized(r).ok());
    }
    const columnar::RecordBatch batch = builder.Finish();

    // Random partition of the columns into 1..nf groups.
    ColumnGroupLayout random_layout;
    const size_t ngroups = 1 + rng.NextBounded(nf);
    random_layout.groups.resize(ngroups);
    for (size_t c = 0; c < nf; ++c) {
      random_layout.groups[rng.NextBounded(ngroups)].push_back(
          static_cast<uint32_t>(c));
    }
    random_layout.groups.erase(
        std::remove_if(random_layout.groups.begin(),
                       random_layout.groups.end(),
                       [](const auto& g) { return g.empty(); }),
        random_layout.groups.end());
    ASSERT_TRUE(random_layout.Validate(nf).ok());

    PredicateRegistry empty_registry;
    std::vector<std::unique_ptr<TableCatalog>> catalogs;
    for (const ColumnGroupLayout& layout :
         {ColumnGroupLayout{}, random_layout}) {
      columnar::TableWriter writer(schema, layout);
      ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
      auto catalog = std::make_unique<TableCatalog>(schema);
      catalog->AddSegment(std::move(writer).Finish(), batch.num_rows());
      catalogs.push_back(std::move(catalog));
    }

    std::vector<json::Value> parsed;
    for (const std::string& r : records) parsed.push_back(*json::Parse(r));

    for (int iter = 0; iter < 8; ++iter) {
      Query q;
      // Predicate on a random column with a typed operand that can match.
      const size_t pc = rng.NextBounded(nf);
      switch (fields[pc].type) {
        case columnar::ColumnType::kInt64:
          q.clauses = {Clause::Of(SimplePredicate::KeyValue(
              fields[pc].name,
              json::Value(static_cast<int64_t>(rng.NextBounded(5)))))};
          break;
        case columnar::ColumnType::kString:
          q.clauses = {Clause::Of(SimplePredicate::Exact(
              fields[pc].name, "s" + std::to_string(rng.NextBounded(4))))};
          break;
        default:
          q.clauses = {Clause::Of(SimplePredicate::Presence(fields[pc].name))};
          break;
      }
      for (size_t c = 0; c < nf; ++c) {
        if (rng.NextBool(0.35)) q.projected.push_back(fields[c].name);
      }

      uint64_t expected = 0;
      for (const json::Value& v : parsed) {
        if (EvaluateQuery(q, v)) ++expected;
      }

      std::vector<uint64_t> reference;
      for (size_t c = 0; c < catalogs.size(); ++c) {
        QueryExecutor executor(catalogs[c].get(), &empty_registry);
        auto result = executor.ExecuteFullScan(q);
        ASSERT_TRUE(result.ok()) << q.ToSql();
        EXPECT_EQ(result->count, expected)
            << q.ToSql() << " round=" << round << " catalog=" << c;
        if (c == 0) {
          reference = result->projected_hashes;
        } else {
          EXPECT_EQ(result->projected_hashes, reference)
              << q.ToSql() << " round=" << round;
        }
      }
    }
  }
}

// ---------- End-to-end: regroup through the adaptive runtime ----------

CiaoConfig GroupedAdaptiveConfig() {
  CiaoConfig config;
  config.budget_us = 50.0;
  config.chunk_size = 64;
  config.sample_size = 300;
  config.adaptive.enabled = true;
  // Organic replans stay out of the way (see the relayout tests).
  config.adaptive.replan_interval = 1u << 20;
  config.adaptive.min_queries = 1u << 20;
  config.adaptive.relayout.enabled = true;
  config.adaptive.relayout.rows_per_group = 64;
  config.adaptive.relayout.column_grouping.enabled = true;
  config.adaptive.relayout.column_grouping.min_saving_fraction = 0.0;
  return config;
}

TEST(ColumnGroupingE2ETest, ForcedRegroupPublishesGroupedLayoutKeepsExact) {
  const workload::Dataset ds = workload::GenerateWinLog({600, 91});
  const auto pool = workload::MicroTierPredicates(0.15);
  Workload wl;
  for (size_t i = 0; i < 3; ++i) {
    Query q;
    q.name = "q" + std::to_string(i);
    q.clauses = {pool[i]};
    q.projected = {"level"};  // hot: {level, info}; time/source cold
    wl.queries.push_back(std::move(q));
  }

  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records,
                                      GroupedAdaptiveConfig(),
                                      CostModel::Default());
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());

  std::vector<uint64_t> expected;
  std::vector<std::vector<uint64_t>> expected_hashes;
  for (const Query& q : wl.queries) {
    uint64_t brute = 0;
    for (const std::string& r : ds.records) {
      auto v = json::Parse(r);
      if (v.ok() && EvaluateQuery(q, *v)) ++brute;
    }
    expected.push_back(brute);
    auto result = (*system)->ExecuteQuery(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, brute) << q.ToSql();
    expected_hashes.push_back(result->projected_hashes);
  }

  ReplanController* controller = (*system)->replan_controller();
  ASSERT_NE(controller, nullptr);
  auto relaid = controller->ForceRelayout();
  ASSERT_TRUE(relaid.ok()) << relaid.status().ToString();
  ASSERT_TRUE(*relaid);

  // The publish carried a grouped vertical layout and charged the ledger.
  const RelayoutStats stats = controller->relayout_stats();
  EXPECT_GT(stats.column_groups, 0u);
  EXPECT_GT(controller->relayout_spent_seconds(), 0.0);

  // The published segments physically carry v4 grouped bodies with the
  // mined hot/cold split: every query's access set is {level, info}
  // (predicate on info, projecting level), so those two share a chunk
  // and the never-touched time/source columns live elsewhere.
  bool saw_grouped_body = false;
  for (const SegmentRef& segment : (*system)->catalog().SnapshotSegments()) {
    auto reader = columnar::TableReader::OpenBorrowed(segment->file_bytes);
    ASSERT_TRUE(reader.ok());
    columnar::DecodeStats decode;
    std::vector<bool> one(ds.schema.num_fields(), false);
    one[1] = true;  // level
    auto batch = reader->ReadBatchProjected(0, one, &decode);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (decode.columns_decoded > 1) {
      saw_grouped_body = true;  // chunk-mate info rode along: v4 grouping
    }
    // Cold columns never share the hot chunk.
    EXPECT_EQ(batch->column(0).size(), 0u);  // time
    EXPECT_EQ(batch->column(2).size(), 0u);  // source
  }
  EXPECT_TRUE(saw_grouped_body);

  // Results stay exact (counts AND projection checksums) and the scan
  // accounts its decode volume.
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    auto result = (*system)->ExecuteQuery(wl.queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected[i]) << wl.queries[i].ToSql();
    EXPECT_EQ(result->projected_hashes, expected_hashes[i])
        << wl.queries[i].ToSql();
    EXPECT_GT(result->stats.bytes_decoded, 0u);
  }
}

TEST(ColumnGroupingE2ETest, ConcurrentQueriesDuringRegroupStayConsistent) {
  // The vertical differential under races: query threads (projections
  // included) hammer the system while another thread repeatedly forces
  // regrouping rewrites underneath them. Counts and projection checksums
  // must never waver. Run under TSan in CI.
  const workload::Dataset ds = workload::GenerateWinLog({300, 71});
  const auto pool = workload::MicroTierPredicates(0.15);
  Workload wl;
  for (size_t i = 0; i < 2; ++i) {
    Query q;
    q.name = "q" + std::to_string(i);
    q.clauses = {pool[i]};
    q.projected = {"level", "source"};
    wl.queries.push_back(std::move(q));
  }

  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records,
                                      GroupedAdaptiveConfig(),
                                      CostModel::Default());
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());

  std::vector<uint64_t> expected;
  std::vector<std::vector<uint64_t>> expected_hashes;
  for (const Query& q : wl.queries) {
    uint64_t brute = 0;
    for (const std::string& r : ds.records) {
      auto v = json::Parse(r);
      if (v.ok() && EvaluateQuery(q, *v)) ++brute;
    }
    expected.push_back(brute);
    auto result = (*system)->ExecuteQuery(q);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->count, brute);
    expected_hashes.push_back(result->projected_hashes);
  }

  ReplanController* controller = (*system)->replan_controller();
  ASSERT_NE(controller, nullptr);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 25;
  constexpr int kRegroups = 5;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t qi = (static_cast<size_t>(t) + i) % wl.queries.size();
        auto result = (*system)->ExecuteQuery(wl.queries[qi]);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (result->count != expected[qi] ||
            result->projected_hashes != expected_hashes[qi]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRegroups && !done.load(std::memory_order_relaxed);
         ++i) {
      auto relaid = controller->ForceRelayout();
      if (!relaid.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t t = 0; t < threads.size() - 1; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE((*system)->relayouts_performed(), 1u);

  for (size_t i = 0; i < wl.queries.size(); ++i) {
    auto result = (*system)->ExecuteQuery(wl.queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected[i]);
    EXPECT_EQ(result->projected_hashes, expected_hashes[i]);
  }
}

}  // namespace
}  // namespace ciao
