// Differential + fuzz suite for the batched multi-pattern matcher: every
// engine (Teddy SIMD/scalar, Aho–Corasick) is pinned to the
// std::string_view::find oracle, and the batched clause evaluator / client
// filter are pinned to the per-pattern RawClauseProgram oracle on
// winlog/yelp/ycsb-shaped records. The shared-matcher tests run under the
// CI TSan job.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/client_filter.h"
#include "client/client_session.h"
#include "common/random.h"
#include "matcher/multi_pattern.h"
#include "predicate/batched_program.h"
#include "predicate/registry.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

using Force = MultiPatternOptions::Force;

bool OracleFound(std::string_view hay, std::string_view pattern) {
  return hay.find(pattern) != std::string_view::npos;
}

std::vector<uint32_t> OraclePositions(std::string_view hay,
                                      std::string_view pattern) {
  std::vector<uint32_t> positions;
  size_t pos = hay.find(pattern);
  while (pos != std::string_view::npos) {
    positions.push_back(static_cast<uint32_t>(pos));
    if (pos + 1 > hay.size()) break;
    pos = hay.find(pattern, pos + 1);
  }
  return positions;
}

/// Scans `hay` with every engine and checks presence (and positions, when
/// tracked) of every pattern against the oracle.
void ExpectMatchesOracle(const std::vector<std::string>& patterns,
                         std::string_view hay, bool track) {
  for (const Force force :
       {Force::kAuto, Force::kTeddy, Force::kAhoCorasick}) {
    MultiPatternOptions options;
    options.force = force;
    const MultiPatternMatcher matcher = MultiPatternMatcher::Build(
        patterns, std::vector<bool>(patterns.size(), track), options);
    MultiPatternHits hits = matcher.MakeHits();
    matcher.Scan(hay, &hits);
    for (uint32_t i = 0; i < patterns.size(); ++i) {
      EXPECT_EQ(hits.Contains(i), OracleFound(hay, patterns[i]))
          << "engine=" << matcher.engine_name() << " pattern=" << patterns[i]
          << " hay=" << hay;
      if (track) {
        EXPECT_EQ(hits.Positions(i), OraclePositions(hay, patterns[i]))
            << "engine=" << matcher.engine_name()
            << " pattern=" << patterns[i] << " hay=" << hay;
      }
    }
  }
}

TEST(MultiPatternTest, BasicPresence) {
  const std::vector<std::string> patterns = {"abc", "bcd", "zz", "abcd"};
  ExpectMatchesOracle(patterns, "xxabcdyy", /*track=*/false);
  ExpectMatchesOracle(patterns, "xxabcdyy", /*track=*/true);
  ExpectMatchesOracle(patterns, "", /*track=*/true);
  ExpectMatchesOracle(patterns, "zzz", /*track=*/true);
}

TEST(MultiPatternTest, EngineSelectionHeuristic) {
  const auto engine = [](std::vector<std::string> patterns) {
    return MultiPatternMatcher::Build(std::move(patterns)).engine();
  };
  // Small set, all length >= 2: Teddy.
  EXPECT_EQ(engine({"abc", "de"}), MultiPatternMatcher::Engine::kTeddy);
  // A 1-byte pattern forces the DFA.
  EXPECT_EQ(engine({"abc", "d"}), MultiPatternMatcher::Engine::kAhoCorasick);
  // > 64 patterns overflow the Teddy buckets into Aho–Corasick.
  std::vector<std::string> many;
  for (int i = 0; i < 65; ++i) many.push_back("pat" + std::to_string(i));
  EXPECT_EQ(engine(many), MultiPatternMatcher::Engine::kAhoCorasick);
  // No non-empty patterns: nothing to scan.
  EXPECT_EQ(engine({""}), MultiPatternMatcher::Engine::kNone);
  // Force overrides the heuristic.
  MultiPatternOptions force_teddy;
  force_teddy.force = Force::kTeddy;
  EXPECT_EQ(MultiPatternMatcher::Build({"a", "b"}, {}, force_teddy).engine(),
            MultiPatternMatcher::Engine::kTeddy);
}

TEST(MultiPatternTest, EmptyPatternMatchesEverywhere) {
  const std::vector<std::string> patterns = {"", "ab"};
  MultiPatternMatcher matcher =
      MultiPatternMatcher::Build(patterns, {true, true});
  MultiPatternHits hits = matcher.MakeHits();
  matcher.Scan("xaby", &hits);
  EXPECT_TRUE(hits.Contains(0));
  EXPECT_EQ(hits.Positions(0), (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(hits.Positions(1), (std::vector<uint32_t>{1}));
}

// Patterns covering all 256 byte values: the byte-class table has no
// spare "unused" class, which once wrapped the 256th class id to 0 and
// silently dropped that byte's patterns.
TEST(MultiPatternTest, AllByteValuesUsedByPatterns) {
  std::vector<std::string> patterns;
  for (int b = 0; b < 256; b += 4) {
    std::string p;
    for (int i = 0; i < 4; ++i) p.push_back(static_cast<char>(b + i));
    patterns.push_back(std::move(p));
  }
  std::string hay;
  for (int b = 255; b >= 0; --b) hay.push_back(static_cast<char>(b));
  for (int b = 0; b < 256; ++b) hay.push_back(static_cast<char>(b));
  ExpectMatchesOracle(patterns, hay, /*track=*/true);
}

TEST(MultiPatternTest, BinarySafety) {
  const std::string nul_pattern("\0c", 2);
  const std::string hay("a\0b\0c\xFF", 6);
  ExpectMatchesOracle({nul_pattern, std::string("\xFF"), "b"}, hay,
                      /*track=*/true);
}

// Structured fuzz: overlapping patterns, shared prefixes, patterns that
// are substrings of each other, 1-byte patterns, and sets past the Teddy
// bucket capacity — every engine against the find() oracle.
TEST(MultiPatternTest, FuzzAgainstFindOracle) {
  Rng rng(0xC1A0);
  for (int iter = 0; iter < 120; ++iter) {
    // Small alphabet maximizes accidental overlap.
    const size_t hay_len = rng.NextBounded(140);
    std::string hay;
    for (size_t i = 0; i < hay_len; ++i) {
      hay.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }

    std::vector<std::string> patterns;
    const size_t base_count = 2 + rng.NextBounded(iter % 10 == 0 ? 70 : 12);
    for (size_t p = 0; p < base_count; ++p) {
      std::string pattern;
      if (rng.NextBool(0.5) && !hay.empty()) {
        const size_t len = 1 + rng.NextBounded(10);
        const size_t start = rng.NextBounded(hay.size());
        pattern = hay.substr(start, len);  // true substring
      } else {
        const size_t len = 1 + rng.NextBounded(8);
        for (size_t i = 0; i < len; ++i) {
          pattern.push_back(static_cast<char>('a' + rng.NextBounded(5)));
        }
      }
      patterns.push_back(pattern);
      // Derived patterns: shared prefix, own prefix (substring-of-each-
      // other pairs), and the occasional 1-byte pattern.
      if (rng.NextBool(0.3)) patterns.push_back(pattern + "a");
      if (rng.NextBool(0.3) && pattern.size() > 1) {
        patterns.push_back(pattern.substr(0, pattern.size() - 1));
      }
      if (rng.NextBool(0.15)) patterns.push_back(pattern.substr(0, 1));
    }

    ExpectMatchesOracle(patterns, hay, /*track=*/rng.NextBool(0.5));
  }
}

// ---------- Batched clause evaluation vs the per-pattern oracle ----------

/// Sampled template clauses of a dataset (every stride-th candidate keeps
/// runtime down while covering all templates).
std::vector<Clause> SampledClauses(workload::DatasetKind kind,
                                   size_t stride) {
  const std::vector<Clause> all =
      workload::TemplatesFor(kind).AllCandidates();
  std::vector<Clause> sampled;
  for (size_t i = 0; i < all.size(); i += stride) sampled.push_back(all[i]);
  return sampled;
}

TEST(BatchedClauseSetTest, DifferentialOnAllDatasets) {
  for (const auto kind :
       {workload::DatasetKind::kWinLog, workload::DatasetKind::kYelp,
        workload::DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 200;
    gen.seed = 29;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const std::vector<Clause> clauses = SampledClauses(kind, 7);

    std::vector<RawClauseProgram> programs;
    std::vector<const RawClauseProgram*> pointers;
    for (const Clause& clause : clauses) {
      auto program = RawClauseProgram::Compile(clause);
      ASSERT_TRUE(program.ok());
      programs.push_back(std::move(*program));
    }
    for (const RawClauseProgram& program : programs) {
      pointers.push_back(&program);
    }

    for (const Force force :
         {Force::kAuto, Force::kTeddy, Force::kAhoCorasick}) {
      MultiPatternOptions options;
      options.force = force;
      const BatchedClauseSet set = BatchedClauseSet::Compile(pointers, options);
      BatchedClauseSet::Scratch scratch = set.MakeScratch();
      for (const std::string& record : ds.records) {
        set.EvaluateRecord(record, &scratch);
        for (size_t c = 0; c < programs.size(); ++c) {
          EXPECT_EQ(scratch.clause_matched[c] != 0,
                    programs[c].Matches(record))
              << "dataset=" << workload::DatasetKindName(kind)
              << " engine=" << set.matcher().engine_name()
              << " clause=" << clauses[c].ToSql() << " record=" << record;
        }
      }
    }
  }
}

TEST(BatchedClauseSetTest, KeyValueOrderedCheckEdgeCases) {
  // Hand-built records exercising the ordered key-then-value window:
  // key patterns inside longer keys, the value string occurring before
  // the key, values past the window's comma, and repeated keys.
  const std::vector<Clause> clauses = {
      Clause::Of(SimplePredicate::KeyValue("score", 5)),
      Clause::Of(SimplePredicate::KeyValue("a", 12)),
      Clause::Of(SimplePredicate::KeyValue("flag", true)),
      Clause::Or({SimplePredicate::KeyValue("a", 1),
                  SimplePredicate::Substring("text", "5")}),
  };
  const std::vector<std::string> records = {
      R"({"linear_score":5,"score":7})",   // 5 belongs to the other key
      R"({"score":5})",
      R"({"score":75})",                   // 5 inside a longer number
      R"({"a":12,"b":1})",
      R"({"b":12,"a":1})",                 // value elsewhere, key miss
      R"({"a":1,"a":12})",                 // repeated key, second matches
      R"({"text":"12,5","a":3})",          // comma inside a string value
      R"({"flag":true,"score":5})",
      R"({"flag":false})",
  };

  std::vector<RawClauseProgram> programs;
  std::vector<const RawClauseProgram*> pointers;
  for (const Clause& clause : clauses) {
    auto program = RawClauseProgram::Compile(clause);
    ASSERT_TRUE(program.ok());
    programs.push_back(std::move(*program));
  }
  for (const RawClauseProgram& program : programs) pointers.push_back(&program);

  for (const Force force :
       {Force::kAuto, Force::kTeddy, Force::kAhoCorasick}) {
    MultiPatternOptions options;
    options.force = force;
    const BatchedClauseSet set = BatchedClauseSet::Compile(pointers, options);
    BatchedClauseSet::Scratch scratch = set.MakeScratch();
    for (const std::string& record : records) {
      set.EvaluateRecord(record, &scratch);
      for (size_t c = 0; c < programs.size(); ++c) {
        EXPECT_EQ(scratch.clause_matched[c] != 0, programs[c].Matches(record))
            << "engine=" << set.matcher().engine_name()
            << " clause=" << clauses[c].ToSql() << " record=" << record;
      }
    }
  }
}

// ---------- ClientFilter: batched vs per-pattern bitvectors ----------

TEST(ClientFilterBatchedTest, BitvectorsIdenticalToPerPatternOracle) {
  for (const auto kind :
       {workload::DatasetKind::kWinLog, workload::DatasetKind::kYelp,
        workload::DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 300;
    gen.seed = 31;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const std::vector<Clause> clauses = SampledClauses(kind, 9);

    PredicateRegistry registry;
    for (const Clause& clause : clauses) {
      ASSERT_TRUE(
          registry.Register(clause, 0.5, 1.0, SearchKernel::kSwar).ok());
    }
    registry.FinalizeBatched();

    const json::JsonChunk chunk =
        ClientSession::BuildChunk(ds.records, 0, ds.records.size());
    PrefilterStats batched_stats, oracle_stats;
    const ClientFilter batched(&registry, ClientMatcherMode::kBatched);
    const ClientFilter oracle(&registry, ClientMatcherMode::kPerPattern);
    EXPECT_TRUE(batched.Evaluate(chunk, &batched_stats) ==
                oracle.Evaluate(chunk, &oracle_stats))
        << "dataset=" << workload::DatasetKindName(kind);

    // A full-size but PERMUTED ids vector must not alias the registry's
    // shared (registry-ordered) program: vector p must hold ids[p]'s
    // matches, not predicate p's.
    std::vector<uint32_t> permuted;
    for (uint32_t id = 0; id < registry.size(); ++id) permuted.push_back(id);
    std::reverse(permuted.begin(), permuted.end());
    PrefilterStats permuted_stats, permuted_oracle_stats;
    const ClientFilter batched_permuted(&registry, permuted,
                                        ClientMatcherMode::kBatched);
    const ClientFilter oracle_permuted(&registry, permuted,
                                       ClientMatcherMode::kPerPattern);
    EXPECT_TRUE(batched_permuted.Evaluate(chunk, &permuted_stats) ==
                oracle_permuted.Evaluate(chunk, &permuted_oracle_stats))
        << "dataset=" << workload::DatasetKindName(kind);

    // Subset filters (budget-limited clients) take the private-compile
    // path; results must match the oracle's subset too.
    std::vector<uint32_t> subset;
    for (uint32_t id = 0; id < registry.size(); id += 2) subset.push_back(id);
    PrefilterStats subset_stats, subset_oracle_stats;
    const ClientFilter batched_subset(&registry, subset,
                                      ClientMatcherMode::kBatched);
    const ClientFilter oracle_subset(&registry, subset,
                                     ClientMatcherMode::kPerPattern);
    EXPECT_TRUE(batched_subset.Evaluate(chunk, &subset_stats) ==
                oracle_subset.Evaluate(chunk, &subset_oracle_stats))
        << "dataset=" << workload::DatasetKindName(kind);
  }
}

TEST(ClientFilterBatchedTest, ExpectedCostReportsBatchedEstimate) {
  PredicateRegistry registry;
  ASSERT_TRUE(registry
                  .Register(Clause::Of(SimplePredicate::Substring(
                                "info", "op_00")),
                            0.3, /*cost_us=*/0.5)
                  .ok());
  ASSERT_TRUE(registry
                  .Register(Clause::Of(SimplePredicate::Substring(
                                "info", "op_01")),
                            0.2, /*cost_us=*/0.7)
                  .ok());
  registry.set_base_cost_us(2.0);

  const ClientFilter per_pattern(&registry, ClientMatcherMode::kPerPattern);
  EXPECT_DOUBLE_EQ(per_pattern.ExpectedCostUs(), 1.2);  // additive only
  const ClientFilter batched(&registry, ClientMatcherMode::kBatched);
  EXPECT_DOUBLE_EQ(batched.ExpectedCostUs(), 3.2);  // base charged once

  // An idle batched client (no ids) pays nothing.
  const ClientFilter idle(&registry, std::vector<uint32_t>{},
                          ClientMatcherMode::kBatched);
  EXPECT_DOUBLE_EQ(idle.ExpectedCostUs(), 0.0);
}

// ---------- Concurrency (run under the CI TSan job) ----------

// One immutable matcher shared by many scanning threads, each with its
// own MultiPatternHits — the sharing contract of the batched client pool.
TEST(MultiPatternConcurrencyTest, SharedMatcherIsThreadSafe) {
  Rng rng(0xF00D);
  std::vector<std::string> haystacks;
  for (int i = 0; i < 24; ++i) {
    std::string hay;
    for (int w = 0; w < 30; ++w) {
      hay += rng.NextIdentifier(static_cast<int>(rng.NextInt(2, 8)));
      hay += ' ';
    }
    haystacks.push_back(std::move(hay));
  }
  std::vector<std::string> patterns;
  for (int i = 0; i < 20; ++i) {
    const std::string& hay = haystacks[rng.NextBounded(haystacks.size())];
    const size_t len = static_cast<size_t>(rng.NextInt(2, 10));
    const size_t start = rng.NextBounded(hay.size() - len);
    patterns.push_back(hay.substr(start, len));
    patterns.push_back(rng.NextIdentifier(6));  // likely miss
  }

  for (const Force force : {Force::kTeddy, Force::kAhoCorasick}) {
    MultiPatternOptions options;
    options.force = force;
    const MultiPatternMatcher matcher = MultiPatternMatcher::Build(
        patterns, std::vector<bool>(patterns.size(), true), options);

    constexpr int kThreads = 8;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        Rng local(0x7777 + static_cast<uint64_t>(t));
        MultiPatternHits hits = matcher.MakeHits();
        for (int i = 0; i < 200; ++i) {
          const std::string& hay =
              haystacks[local.NextBounded(haystacks.size())];
          matcher.Scan(hay, &hits);
          for (uint32_t p = 0; p < patterns.size(); ++p) {
            if (hits.Contains(p) != OracleFound(hay, patterns[p]) ||
                hits.Positions(p) != OraclePositions(hay, patterns[p])) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(mismatches.load(), 0);
  }
}

// The registry's finalized batched program shared across ClientFilter
// instances on concurrent threads (the fleet-worker access pattern).
TEST(MultiPatternConcurrencyTest, SharedRegistryProgramAcrossClientThreads) {
  workload::GeneratorOptions gen;
  gen.num_records = 256;
  gen.seed = 37;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kYcsb, gen);
  const std::vector<Clause> clauses =
      SampledClauses(workload::DatasetKind::kYcsb, 11);

  PredicateRegistry registry;
  for (const Clause& clause : clauses) {
    ASSERT_TRUE(registry.Register(clause, 0.5, 1.0).ok());
  }
  registry.FinalizeBatched();

  // Oracle bits, computed single-threaded.
  const json::JsonChunk chunk =
      ClientSession::BuildChunk(ds.records, 0, ds.records.size());
  PrefilterStats oracle_stats;
  const BitVectorSet expected =
      ClientFilter(&registry, ClientMatcherMode::kPerPattern)
          .Evaluate(chunk, &oracle_stats);

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      // Each thread's filter aliases the registry's shared immutable
      // program (exactly what fleet workers do).
      const ClientFilter filter(&registry, ClientMatcherMode::kBatched);
      for (int round = 0; round < 4; ++round) {
        PrefilterStats stats;
        if (!(filter.Evaluate(chunk, &stats) == expected)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ciao
