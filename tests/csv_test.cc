#include <gtest/gtest.h>

#include "common/random.h"
#include "columnar/json_converter.h"
#include "csv/converter.h"
#include "csv/csv.h"
#include "csv/pattern_compiler.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "workload/csv_export.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao::csv {
namespace {

// ---------- Codec ----------

TEST(CsvCodecTest, EncodePlainAndQuoted) {
  EXPECT_EQ(EncodeField("plain"), "plain");
  EXPECT_EQ(EncodeField(""), "");
  EXPECT_EQ(EncodeField("a,b"), "\"a,b\"");
  EXPECT_EQ(EncodeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EncodeField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(EncodeLine({"a", "b,c", ""}), "a,\"b,c\",");
}

TEST(CsvCodecTest, ParsePlainAndQuoted) {
  auto fields = ParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));

  fields = ParseLine("a,\"b,c\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b,c", "d"}));

  fields = ParseLine("\"say \"\"hi\"\"\",x");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");

  fields = ParseLine("");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 1u);
  EXPECT_EQ((*fields)[0], "");

  fields = ParseLine("a,,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "");
}

TEST(CsvCodecTest, ParseErrors) {
  EXPECT_FALSE(ParseLine("\"unterminated").ok());
  EXPECT_FALSE(ParseLine("\"closed\"junk").ok());
}

TEST(CsvCodecTest, RoundTripRandomFields) {
  Rng rng(7);
  const char alphabet[] = "ab,\"\n x";
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::string> fields;
    const size_t n = 1 + rng.NextBounded(5);
    for (size_t i = 0; i < n; ++i) {
      std::string f;
      const size_t len = rng.NextBounded(8);
      for (size_t j = 0; j < len; ++j) {
        f.push_back(alphabet[rng.NextBounded(sizeof(alphabet) - 1)]);
      }
      fields.push_back(std::move(f));
    }
    // Embedded newlines would need multi-line framing; our NDJSON-style
    // chunking is line-based, so skip those cases (the writer still
    // quotes them correctly for general CSV consumers).
    bool has_newline = false;
    for (const auto& f : fields) {
      if (f.find('\n') != std::string::npos) has_newline = true;
    }
    if (has_newline) continue;
    const std::string line = EncodeLine(fields);
    auto parsed = ParseLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(*parsed, fields) << line;
  }
}

// ---------- Pattern compiler ----------

TEST(CsvPatternTest, SupportedKinds) {
  EXPECT_TRUE(RawCsvPredicateProgram::Compile(
                  SimplePredicate::Exact("name", "Bob"))
                  .ok());
  EXPECT_TRUE(RawCsvPredicateProgram::Compile(
                  SimplePredicate::Substring("text", "delicious"))
                  .ok());
  EXPECT_TRUE(RawCsvPredicateProgram::Compile(
                  SimplePredicate::KeyValue("age", 10))
                  .ok());
  EXPECT_TRUE(RawCsvPredicateProgram::Compile(
                  SimplePredicate::Presence("email"))
                  .status()
                  .IsUnsupported());
  EXPECT_TRUE(RawCsvPredicateProgram::Compile(
                  SimplePredicate::RangeLess("age", 10))
                  .status()
                  .IsUnsupported());
}

TEST(CsvPatternTest, MatchesOnEncodedLines) {
  const std::string line = EncodeLine({"Bob", "22", "really delicious food"});
  auto exact =
      RawCsvPredicateProgram::Compile(SimplePredicate::Exact("name", "Bob"));
  EXPECT_TRUE(exact->Matches(line));
  auto substr = RawCsvPredicateProgram::Compile(
      SimplePredicate::Substring("text", "delicious"));
  EXPECT_TRUE(substr->Matches(line));
  auto kv =
      RawCsvPredicateProgram::Compile(SimplePredicate::KeyValue("age", 22));
  EXPECT_TRUE(kv->Matches(line));
  auto miss =
      RawCsvPredicateProgram::Compile(SimplePredicate::Exact("name", "Zed"));
  EXPECT_FALSE(miss->Matches(line));
}

TEST(CsvPatternTest, QuotedVariantAvoidsFalseNegatives) {
  // Operand contains a quote; inside a quoted CSV field it is doubled.
  const SimplePredicate p =
      SimplePredicate::Substring("text", "say \"hi\"");
  const std::string line = EncodeLine({"x", "they say \"hi\" loudly"});
  auto prog = RawCsvPredicateProgram::Compile(p);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->PatternStrings().size(), 2u);
  EXPECT_TRUE(prog->Matches(line));
}

TEST(CsvPatternTest, CommaOperandMatchesQuotedField) {
  const SimplePredicate p = SimplePredicate::Exact("note", "a,b");
  const std::string line = EncodeLine({"a,b", "other"});
  auto prog = RawCsvPredicateProgram::Compile(p);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->Matches(line));
}

TEST(CsvPatternTest, ClauseDisjunction) {
  Clause c = Clause::Or({SimplePredicate::Exact("name", "Bob"),
                         SimplePredicate::Exact("name", "John")});
  auto prog = RawCsvClauseProgram::Compile(c);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->Matches(EncodeLine({"John", "1"})));
  EXPECT_FALSE(prog->Matches(EncodeLine({"Alice", "1"})));
  // Presence poisons the clause for CSV.
  Clause with_presence = Clause::Or(
      {SimplePredicate::Exact("a", "x"), SimplePredicate::Presence("b")});
  EXPECT_FALSE(RawCsvClauseProgram::Compile(with_presence).ok());
}

// Property: no false negatives on exported datasets for every CSV-
// supported Table-II predicate.
TEST(CsvPatternTest, NoFalseNegativesOnExportedDatasets) {
  for (const auto kind :
       {workload::DatasetKind::kYelp, workload::DatasetKind::kWinLog}) {
    workload::GeneratorOptions opt;
    opt.num_records = 300;
    opt.seed = 77;
    const workload::Dataset ds = workload::GenerateDataset(kind, opt);
    auto csv_ds = workload::ExportCsv(ds);
    ASSERT_TRUE(csv_ds.ok());

    const auto pool = workload::TemplatesFor(kind).AllCandidates();
    size_t checked = 0;
    for (const Clause& clause : pool) {
      auto prog = RawCsvClauseProgram::Compile(clause);
      if (!prog.ok()) continue;  // CSV-unsupported kinds
      ++checked;
      for (size_t i = 0; i < ds.records.size(); ++i) {
        auto record = json::Parse(ds.records[i]);
        if (EvaluateClause(clause, *record)) {
          ASSERT_TRUE(prog->Matches(csv_ds->lines[i]))
              << clause.ToSql() << " on " << csv_ds->lines[i];
        }
      }
    }
    EXPECT_GT(checked, 50u);
  }
}

// ---------- Converter ----------

TEST(CsvConverterTest, TypedLoadAndNulls) {
  columnar::Schema schema({{"i", columnar::ColumnType::kInt64},
                           {"d", columnar::ColumnType::kDouble},
                           {"b", columnar::ColumnType::kBool},
                           {"s", columnar::ColumnType::kString}});
  CsvBatchBuilder builder(schema);
  ASSERT_TRUE(builder.AppendLine("4,2.5,true,hello").ok());
  ASSERT_TRUE(builder.AppendLine(",,,").ok());          // all nulls
  ASSERT_TRUE(builder.AppendLine("oops,3,false,x").ok());  // coercion error
  EXPECT_FALSE(builder.AppendLine("1,2,true").ok());    // wrong field count
  EXPECT_EQ(builder.parse_errors(), 1u);
  EXPECT_EQ(builder.coercion_errors(), 1u);

  columnar::RecordBatch batch = builder.Finish();
  ASSERT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.column(0).GetInt64(0), 4);
  EXPECT_FALSE(batch.column(0).IsValid(1));
  EXPECT_FALSE(batch.column(0).IsValid(2));
  EXPECT_EQ(batch.column(1).GetDouble(2), 3.0);
  EXPECT_EQ(batch.column(3).GetString(0), "hello");
}

TEST(CsvConverterTest, LineToJsonWithNestedPaths) {
  columnar::Schema schema({{"id", columnar::ColumnType::kInt64},
                           {"url.domain", columnar::ColumnType::kString},
                           {"url.site", columnar::ColumnType::kString}});
  auto record = CsvLineToJson("7,example.com,home", schema);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->Find("id")->as_int(), 7);
  EXPECT_EQ(record->FindPath("url.domain")->as_string(), "example.com");
  EXPECT_EQ(record->FindPath("url.site")->as_string(), "home");
}

// ---------- Export + end-to-end agreement ----------

TEST(CsvExportTest, ExportedDatasetLoadsIdentically) {
  const workload::Dataset ds = workload::GenerateYelp({200, 31});
  auto csv_ds = workload::ExportCsv(ds);
  ASSERT_TRUE(csv_ds.ok());
  ASSERT_EQ(csv_ds->lines.size(), ds.records.size());
  EXPECT_NE(csv_ds->header.find("review_id"), std::string::npos);

  // Load via JSON and via CSV; the batches must agree cell-for-cell.
  columnar::BatchBuilder json_builder(ds.schema);
  CsvBatchBuilder csv_builder(ds.schema);
  for (size_t i = 0; i < ds.records.size(); ++i) {
    ASSERT_TRUE(json_builder.AppendSerialized(ds.records[i]).ok());
    ASSERT_TRUE(csv_builder.AppendLine(csv_ds->lines[i]).ok());
  }
  EXPECT_EQ(csv_builder.coercion_errors(), 0u);
  const columnar::RecordBatch a = json_builder.Finish();
  const columnar::RecordBatch b = csv_builder.Finish();
  EXPECT_TRUE(a.Equals(b));
}

TEST(CsvExportTest, SemanticEvalAgreesAcrossFormats) {
  const workload::Dataset ds = workload::GenerateYcsb({150, 37});
  auto csv_ds = workload::ExportCsv(ds);
  ASSERT_TRUE(csv_ds.ok());

  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYcsb).AllCandidates();
  Rng rng(41);
  for (int iter = 0; iter < 20; ++iter) {
    const Clause& clause = pool[rng.NextBounded(pool.size())];
    for (size_t i = 0; i < ds.records.size(); ++i) {
      auto json_rec = json::Parse(ds.records[i]);
      auto csv_rec = CsvLineToJson(csv_ds->lines[i], ds.schema);
      ASSERT_TRUE(csv_rec.ok());
      // CSV cannot distinguish missing from empty-string for nullable
      // string fields; both evaluate identically for our predicates
      // because generators never emit empty strings for predicate fields.
      EXPECT_EQ(EvaluateClause(clause, *json_rec),
                EvaluateClause(clause, *csv_rec))
          << clause.ToSql() << " row " << i;
    }
  }
}

}  // namespace
}  // namespace ciao::csv
