// The work-stealing chunk scheduler under the fleet: single-threaded
// semantics (own-deque FIFO, steal-from-longest-victim's-back, static
// mode, failover, termination accounting) plus the TSan-hunted
// concurrency suite — concurrent steal vs. push vs. drain/close — that
// the CI thread-sanitizer job runs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "client/chunk_scheduler.h"
#include "client/fleet.h"

namespace ciao {
namespace {

ChunkTask Task(uint64_t index) { return ChunkTask{index, 0, 0}; }

// ---------- Single-threaded semantics ----------

TEST(ChunkSchedulerTest, OwnDequeIsFifo) {
  ChunkScheduler scheduler(2);
  scheduler.Push(0, Task(0));
  scheduler.Push(0, Task(1));
  scheduler.Push(0, Task(2));
  bool stolen = true;
  for (uint64_t want = 0; want < 3; ++want) {
    auto task = scheduler.Next(0, &stolen);
    ASSERT_TRUE(task.has_value());
    EXPECT_EQ(task->index, want);
    EXPECT_FALSE(stolen);
    scheduler.TaskDone();
  }
  EXPECT_FALSE(scheduler.Next(0).has_value());  // all done -> terminate
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(ChunkSchedulerTest, StealsFromBackOfLongestVictim) {
  ChunkScheduler scheduler(3);
  scheduler.Push(0, Task(0));
  scheduler.Push(1, Task(1));
  scheduler.Push(1, Task(2));
  scheduler.Push(1, Task(3));
  // Worker 2 owns nothing: it must steal the BACK of worker 1's deque
  // (the longest), i.e. task 3 — the chunk its owner is furthest from.
  bool stolen = false;
  auto task = scheduler.Next(2, &stolen);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->index, 3u);
  EXPECT_TRUE(stolen);
  EXPECT_EQ(scheduler.steals(), 1u);
  scheduler.TaskDone();
}

TEST(ChunkSchedulerTest, StaticModeNeverStealsFromHealthyWorkers) {
  ChunkScheduler scheduler(2, /*work_stealing=*/false);
  scheduler.Push(0, Task(0));
  scheduler.Push(1, Task(1));
  // Worker 0 drains its own deque, then must WAIT for worker 1's task
  // rather than steal it — so we finish 1's task from here and observe
  // worker 0's Next unblocking into termination.
  ASSERT_TRUE(scheduler.Next(0).has_value());
  scheduler.TaskDone();
  std::thread waiter([&] { EXPECT_FALSE(scheduler.Next(0).has_value()); });
  ASSERT_TRUE(scheduler.Next(1).has_value());
  scheduler.TaskDone();  // pending hits 0 -> waiter terminates
  waiter.join();
}

TEST(ChunkSchedulerTest, StaticModeStealsFromFailedWorkers) {
  ChunkScheduler scheduler(2, /*work_stealing=*/false);
  scheduler.Push(1, Task(7));
  scheduler.MarkFailed(1);
  bool stolen = false;
  auto task = scheduler.Next(0, &stolen);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->index, 7u);
  EXPECT_TRUE(stolen);
  scheduler.TaskDone();
}

TEST(ChunkSchedulerTest, RequeueKeepsTaskPendingUntilCompleted) {
  ChunkScheduler scheduler(2);
  scheduler.Push(0, Task(0));
  auto task = scheduler.Next(0);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(scheduler.pending(), 1u);  // in flight, not done
  scheduler.Requeue(0, *task);         // failing client hands it back
  scheduler.MarkFailed(0);
  EXPECT_EQ(scheduler.pending(), 1u);  // still exactly one task
  auto again = scheduler.Next(1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->index, 0u);
  scheduler.TaskDone();
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_FALSE(scheduler.Next(1).has_value());
}

TEST(ChunkSchedulerTest, FailedWorkerOwnDequeIgnoredByItself) {
  ChunkScheduler scheduler(2);
  scheduler.Push(0, Task(0));
  scheduler.MarkFailed(0);
  // A failed worker no longer takes work — not even its own; its task is
  // only reachable via another worker.
  EXPECT_FALSE(scheduler.Next(0).has_value());
  auto task = scheduler.Next(1);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->index, 0u);
  scheduler.TaskDone();
}

TEST(ChunkSchedulerTest, CloseAbandonsQueuedWork) {
  ChunkScheduler scheduler(1);
  scheduler.Push(0, Task(0));
  scheduler.Push(0, Task(1));
  scheduler.Close();
  EXPECT_FALSE(scheduler.Next(0).has_value());
  EXPECT_TRUE(scheduler.closed());
  EXPECT_EQ(scheduler.pending(), 2u);  // abandoned, visible post-mortem
}

// ---------- Concurrency (run under TSan in CI) ----------

// Workers drain while a producer keeps pushing: every task must be
// delivered exactly once, across own-pops and steals.
TEST(ChunkSchedulerConcurrencyTest, ConcurrentPushAndStealDeliverExactlyOnce) {
  constexpr size_t kWorkers = 4;
  constexpr uint64_t kTasks = 2000;
  ChunkScheduler scheduler(kWorkers);
  std::vector<std::atomic<uint32_t>> delivered(kTasks);

  // Seed half up front; push the rest concurrently with the drain, all
  // onto worker 0's deque so the others can only make progress stealing.
  for (uint64_t t = 0; t < kTasks / 2; ++t) {
    scheduler.Push(t % kWorkers, Task(t));
  }
  std::thread producer([&] {
    for (uint64_t t = kTasks / 2; t < kTasks; ++t) {
      scheduler.Push(0, Task(t));
    }
  });

  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (true) {
        auto task = scheduler.Next(w);
        if (!task.has_value()) break;
        delivered[task->index].fetch_add(1, std::memory_order_relaxed);
        scheduler.TaskDone();
      }
    });
  }
  producer.join();
  for (std::thread& t : workers) t.join();

  for (uint64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(delivered[t].load(), 1u) << "task " << t;
  }
  EXPECT_EQ(scheduler.pending(), 0u);
}

// Workers that fail mid-drain requeue their in-flight task; survivors
// must still deliver every task exactly once.
TEST(ChunkSchedulerConcurrencyTest, ConcurrentFailoverLosesNothing) {
  constexpr size_t kWorkers = 4;
  constexpr uint64_t kTasks = 1000;
  ChunkScheduler scheduler(kWorkers);
  std::vector<std::atomic<uint32_t>> delivered(kTasks);
  for (uint64_t t = 0; t < kTasks; ++t) {
    scheduler.Push(t % kWorkers, Task(t));
  }

  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      uint64_t processed = 0;
      while (true) {
        auto task = scheduler.Next(w);
        if (!task.has_value()) break;
        // Workers 1..3 crash after 10 tasks; worker 0 survives.
        if (w != 0 && processed >= 10) {
          scheduler.Requeue(w, *task);
          scheduler.MarkFailed(w);
          break;
        }
        delivered[task->index].fetch_add(1, std::memory_order_relaxed);
        ++processed;
        scheduler.TaskDone();
      }
    });
  }
  for (std::thread& t : workers) t.join();

  for (uint64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(delivered[t].load(), 1u) << "task " << t;
  }
  EXPECT_EQ(scheduler.pending(), 0u);
}

// Close racing a concurrent drain + push: workers must all exit, each
// task is delivered at most once, and nothing deadlocks.
TEST(ChunkSchedulerConcurrencyTest, CloseRacesDrainWithoutDeadlock) {
  for (int round = 0; round < 20; ++round) {
    constexpr size_t kWorkers = 3;
    constexpr uint64_t kTasks = 300;
    ChunkScheduler scheduler(kWorkers);
    std::vector<std::atomic<uint32_t>> delivered(kTasks);
    for (uint64_t t = 0; t < kTasks / 2; ++t) {
      scheduler.Push(t % kWorkers, Task(t));
    }

    std::vector<std::thread> workers;
    for (size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        while (true) {
          auto task = scheduler.Next(w);
          if (!task.has_value()) break;
          delivered[task->index].fetch_add(1, std::memory_order_relaxed);
          scheduler.TaskDone();
        }
      });
    }
    std::thread pusher([&] {
      for (uint64_t t = kTasks / 2; t < kTasks; ++t) {
        scheduler.Push(1, Task(t));
      }
    });
    std::thread closer([&] { scheduler.Close(); });
    pusher.join();
    closer.join();
    for (std::thread& t : workers) t.join();

    for (uint64_t t = 0; t < kTasks; ++t) {
      EXPECT_LE(delivered[t].load(), 1u) << "task " << t;
    }
  }
}

}  // namespace
}  // namespace ciao
