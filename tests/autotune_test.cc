// Hardware-profile autotuning: versioned JSON round-trip (unknown-field
// tolerance, corrupt-file fallback), crossover derivation (never picks a
// kernel the matrix measured as dominated), the CIAO_DISABLE_SIMD
// forced-fallback knob, the profile-seeded relayout seed, a quick
// calibration smoke pass, and per-client profile re-pricing in the fleet
// allocator.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "client/fleet.h"
#include "costmodel/autotune.h"
#include "costmodel/hardware_profile.h"
#include "json/parser.h"
#include "json/writer.h"
#include "matcher/kernels.h"
#include "matcher/multi_pattern.h"
#include "matcher/simd_gate.h"
#include "predicate/registry.h"
#include "workload/templates.h"

namespace ciao {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// A fully-populated calibrated profile with distinctive values in every
/// persisted field.
HardwareProfile MakeCalibratedProfile() {
  HardwareProfile p;
  p.name = "unit-test-host";
  p.description = "synthetic calibrated profile";
  p.true_coeffs = {0.001, 0.0002, 0.0003, 0.00004, 0.05};
  p.noise_sigma = 0.01;
  p.stall_probability = 0.002;
  p.stall_factor = 3.0;
  p.calibrated = true;
  p.fit_r_squared = 0.923;
  p.kernel_bench = {
      {"teddy", 8, 4, 0.25, 2400.0},
      {"aho_corasick", 8, 4, 0.25, 350.0},
      {"teddy", 96, 4, 0.25, 90.0},
      {"aho_corasick", 96, 4, 0.25, 340.0},
  };
  p.crossover = {8, 4};
  p.search_kernel_bench = {
      {"std_find", 900.0},
      {"memchr", 1800.0},
      {"horspool", 1200.0},
      {"swar", 2600.0},
  };
  p.tape_parse_mbps = 512.0;
  p.columnar_decode_mbps = 300.0;
  p.bitvector_mbits_per_second = 30000.0;
  p.rewrite_rows_per_second = 750000.0;
  p.cache_probe = {{32, 21000.0}, {4096, 18000.0}};
  return p;
}

void ExpectProfilesEqual(const HardwareProfile& a, const HardwareProfile& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.description, b.description);
  EXPECT_DOUBLE_EQ(a.true_coeffs.k1, b.true_coeffs.k1);
  EXPECT_DOUBLE_EQ(a.true_coeffs.k2, b.true_coeffs.k2);
  EXPECT_DOUBLE_EQ(a.true_coeffs.k3, b.true_coeffs.k3);
  EXPECT_DOUBLE_EQ(a.true_coeffs.k4, b.true_coeffs.k4);
  EXPECT_DOUBLE_EQ(a.true_coeffs.c, b.true_coeffs.c);
  EXPECT_DOUBLE_EQ(a.noise_sigma, b.noise_sigma);
  EXPECT_DOUBLE_EQ(a.stall_probability, b.stall_probability);
  EXPECT_DOUBLE_EQ(a.stall_factor, b.stall_factor);
  EXPECT_EQ(a.calibrated, b.calibrated);
  EXPECT_DOUBLE_EQ(a.fit_r_squared, b.fit_r_squared);
  ASSERT_EQ(a.kernel_bench.size(), b.kernel_bench.size());
  for (size_t i = 0; i < a.kernel_bench.size(); ++i) {
    EXPECT_EQ(a.kernel_bench[i].engine, b.kernel_bench[i].engine);
    EXPECT_EQ(a.kernel_bench[i].num_patterns, b.kernel_bench[i].num_patterns);
    EXPECT_EQ(a.kernel_bench[i].pattern_len, b.kernel_bench[i].pattern_len);
    EXPECT_DOUBLE_EQ(a.kernel_bench[i].selectivity,
                     b.kernel_bench[i].selectivity);
    EXPECT_DOUBLE_EQ(a.kernel_bench[i].mbps, b.kernel_bench[i].mbps);
  }
  EXPECT_EQ(a.crossover.teddy_max_patterns, b.crossover.teddy_max_patterns);
  EXPECT_EQ(a.crossover.teddy_min_len, b.crossover.teddy_min_len);
  ASSERT_EQ(a.search_kernel_bench.size(), b.search_kernel_bench.size());
  for (size_t i = 0; i < a.search_kernel_bench.size(); ++i) {
    EXPECT_EQ(a.search_kernel_bench[i].kernel, b.search_kernel_bench[i].kernel);
    EXPECT_DOUBLE_EQ(a.search_kernel_bench[i].mbps,
                     b.search_kernel_bench[i].mbps);
  }
  EXPECT_DOUBLE_EQ(a.tape_parse_mbps, b.tape_parse_mbps);
  EXPECT_DOUBLE_EQ(a.columnar_decode_mbps, b.columnar_decode_mbps);
  EXPECT_DOUBLE_EQ(a.bitvector_mbits_per_second, b.bitvector_mbits_per_second);
  EXPECT_DOUBLE_EQ(a.rewrite_rows_per_second, b.rewrite_rows_per_second);
  ASSERT_EQ(a.cache_probe.size(), b.cache_probe.size());
  for (size_t i = 0; i < a.cache_probe.size(); ++i) {
    EXPECT_EQ(a.cache_probe[i].size_kb, b.cache_probe[i].size_kb);
    EXPECT_DOUBLE_EQ(a.cache_probe[i].mbps, b.cache_probe[i].mbps);
  }
}

/// Overwrites `key` in place (json::Object is a pair vector and Add
/// appends, so a duplicate key would be shadowed by the original).
void SetField(json::Value* doc, std::string_view key, json::Value v) {
  for (auto& [k, val] : doc->as_object()) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  doc->Add(std::string(key), std::move(v));
}

// ---------- JSON schema round-trip ----------

TEST(ProfileJsonTest, InMemoryRoundTripPreservesEveryField) {
  const HardwareProfile p = MakeCalibratedProfile();
  auto back = ProfileFromJson(ProfileToJson(p));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectProfilesEqual(p, *back);
}

TEST(ProfileJsonTest, SaveLoadRoundTripThroughDisk) {
  const HardwareProfile p = MakeCalibratedProfile();
  const std::string path = TempPath("autotune_roundtrip.json");
  ASSERT_TRUE(SaveProfile(p, path).ok());
  auto back = LoadProfile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectProfilesEqual(p, *back);
  std::remove(path.c_str());
}

TEST(ProfileJsonTest, UnknownFieldsAreTolerated) {
  json::Value doc = ProfileToJson(MakeCalibratedProfile());
  // A future writer may add fields; today's reader must skip them.
  doc.Add("future_extension", json::Value("ignore me"));
  doc.Add("future_number", json::Value(3.14));
  auto back = ProfileFromJson(doc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name, "unit-test-host");
}

TEST(ProfileJsonTest, OlderSchemaVersionStillParses) {
  json::Value doc = ProfileToJson(MakeCalibratedProfile());
  SetField(&doc, "version", json::Value(1.0));
  EXPECT_TRUE(ProfileFromJson(doc).ok());
}

TEST(ProfileJsonTest, NewerSchemaVersionRejected) {
  json::Value doc = ProfileToJson(MakeCalibratedProfile());
  SetField(&doc, "version", json::Value(99.0));
  EXPECT_FALSE(ProfileFromJson(doc).ok());
}

TEST(ProfileJsonTest, ForeignSchemaRejected) {
  json::Value doc = ProfileToJson(MakeCalibratedProfile());
  SetField(&doc, "schema", json::Value("somebody-elses-format"));
  EXPECT_FALSE(ProfileFromJson(doc).ok());
}

TEST(ProfileJsonTest, CorruptFileFailsCleanly) {
  const std::string path = TempPath("autotune_corrupt.json");
  {
    std::ofstream out(path);
    out << "{\"schema\": \"ciao-hardware-profile\", truncated...";
  }
  EXPECT_FALSE(LoadProfile(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadProfile(path).ok());  // missing file: clean error too
}

// ---------- Crossover derivation ----------

std::vector<KernelBenchPoint> MatrixCell(uint32_t count, uint32_t len,
                                         double teddy_mbps, double ac_mbps) {
  return {{"teddy", count, len, 0.2, teddy_mbps},
          {"aho_corasick", count, len, 0.2, ac_mbps}};
}

void Append(std::vector<KernelBenchPoint>* out,
            std::vector<KernelBenchPoint> cell) {
  out->insert(out->end(), cell.begin(), cell.end());
}

TEST(DeriveKernelCrossoverTest, CleanMonotoneTableNeverPicksDominated) {
  // Teddy wins through 48 patterns, AC from 96 up, at every length.
  std::vector<KernelBenchPoint> bench;
  for (const uint32_t len : {2u, 4u, 8u}) {
    Append(&bench, MatrixCell(4, len, 3000.0, 300.0));
    Append(&bench, MatrixCell(16, len, 2000.0, 310.0));
    Append(&bench, MatrixCell(48, len, 900.0, 320.0));
    Append(&bench, MatrixCell(96, len, 100.0, 330.0));
    Append(&bench, MatrixCell(192, len, 50.0, 340.0));
  }
  const KernelCrossover cx = DeriveKernelCrossover(bench);
  EXPECT_GE(cx.teddy_max_patterns, 48u);
  EXPECT_LT(cx.teddy_max_patterns, 96u);
  EXPECT_EQ(cx.teddy_min_len, 2u);
  // The derived dispatch must pick the measured winner in every cell.
  for (const uint32_t len : {2u, 4u, 8u}) {
    for (const uint32_t count : {4u, 16u, 48u, 96u, 192u}) {
      const bool picks_teddy =
          count <= cx.teddy_max_patterns && len >= cx.teddy_min_len;
      EXPECT_EQ(picks_teddy, count <= 48) << count << "x" << len;
    }
  }
}

TEST(DeriveKernelCrossoverTest, AcDominantTableDisablesTeddy) {
  std::vector<KernelBenchPoint> bench;
  Append(&bench, MatrixCell(8, 4, 100.0, 400.0));
  Append(&bench, MatrixCell(96, 4, 50.0, 400.0));
  EXPECT_EQ(DeriveKernelCrossover(bench).teddy_max_patterns, 0u);
}

TEST(DeriveKernelCrossoverTest, TeddyDominantTableKeepsTeddyEverywhere) {
  std::vector<KernelBenchPoint> bench;
  Append(&bench, MatrixCell(8, 4, 3000.0, 300.0));
  Append(&bench, MatrixCell(192, 4, 800.0, 300.0));
  EXPECT_GE(DeriveKernelCrossover(bench).teddy_max_patterns, 192u);
}

TEST(DeriveKernelCrossoverTest, EmptyOrUncomparableTableKeepsDefaults) {
  EXPECT_EQ(DeriveKernelCrossover({}).teddy_max_patterns,
            KernelCrossover{}.teddy_max_patterns);
  // 1-byte-pattern cells are structurally excluded (never Teddy).
  std::vector<KernelBenchPoint> bench = MatrixCell(8, 1, 9999.0, 1.0);
  EXPECT_EQ(DeriveKernelCrossover(bench).teddy_max_patterns,
            KernelCrossover{}.teddy_max_patterns);
}

TEST(DeriveKernelCrossoverTest, ShortLengthsLosingRaiseMinLen) {
  // Teddy wins at len >= 4 but loses the len-2 cells: the crossover must
  // keep small sets on Teddy while routing short-pattern sets to the DFA.
  std::vector<KernelBenchPoint> bench;
  Append(&bench, MatrixCell(8, 2, 200.0, 400.0));
  Append(&bench, MatrixCell(8, 4, 2500.0, 400.0));
  Append(&bench, MatrixCell(8, 8, 3000.0, 400.0));
  const KernelCrossover cx = DeriveKernelCrossover(bench);
  EXPECT_GE(cx.teddy_max_patterns, 8u);
  EXPECT_EQ(cx.teddy_min_len, 4u);
}

TEST(CrossoverDispatchTest, BuildRespectsExplicitCrossover) {
  std::vector<std::string> patterns = {"alpha", "bravo", "charl"};
  MultiPatternOptions opt;
  opt.has_crossover = true;
  opt.crossover = {0, 2};  // always DFA
  const auto ac = MultiPatternMatcher::Build(patterns, {}, opt);
  EXPECT_EQ(ac.engine(), MultiPatternMatcher::Engine::kAhoCorasick);
  opt.crossover = {64, 2};
  const auto teddy = MultiPatternMatcher::Build(patterns, {}, opt);
  EXPECT_EQ(teddy.engine(), MultiPatternMatcher::Engine::kTeddy);
}

TEST(CrossoverDispatchTest, InstalledProfileDrivesAutoDispatch) {
  auto profile = std::make_shared<HardwareProfile>(MakeCalibratedProfile());
  profile->crossover = {2, 2};  // tiny cutoff: 3 patterns -> DFA
  SetActiveHardwareProfile(profile);
  const auto m =
      MultiPatternMatcher::Build({"alpha", "bravo", "charl"});
  EXPECT_EQ(m.engine(), MultiPatternMatcher::Engine::kAhoCorasick);
  SetActiveHardwareProfile(nullptr);  // restore defaults for other tests
  const auto back = MultiPatternMatcher::Build({"alpha", "bravo", "charl"});
  EXPECT_EQ(back.engine(), MultiPatternMatcher::Engine::kTeddy);
}

// ---------- CIAO_DISABLE_SIMD ----------

TEST(SimdGateTest, ParsesFeatureLists) {
  EXPECT_EQ(ParseSimdDisableList(""), 0u);
  EXPECT_EQ(ParseSimdDisableList("avx2"),
            1u << static_cast<int>(SimdFeature::kAvx2));
  EXPECT_EQ(ParseSimdDisableList("AVX2, ssse3"),
            (1u << static_cast<int>(SimdFeature::kAvx2)) |
                (1u << static_cast<int>(SimdFeature::kSsse3)));
  EXPECT_EQ(ParseSimdDisableList(" sse2 "),
            1u << static_cast<int>(SimdFeature::kSse2));
  EXPECT_EQ(ParseSimdDisableList("bogus,unknown"), 0u);
  EXPECT_EQ(ParseSimdDisableList("all"),
            ParseSimdDisableList("sse2,ssse3,avx2"));
}

TEST(SimdGateTest, MaskForcesScalarKernels) {
  ASSERT_EQ(setenv("CIAO_DISABLE_SIMD", "all", 1), 0);
  ReloadSimdDisableMaskForTest();
  EXPECT_TRUE(SimdFeatureDisabled(SimdFeature::kSse2));
  EXPECT_TRUE(SimdFeatureDisabled(SimdFeature::kSsse3));
  EXPECT_TRUE(SimdFeatureDisabled(SimdFeature::kAvx2));

  // Teddy must resolve to its scalar kernel under the mask.
  const auto m = MultiPatternMatcher::Build({"needle", "haystack"});
  ASSERT_EQ(m.engine(), MultiPatternMatcher::Engine::kTeddy);
  EXPECT_EQ(m.engine_name(), "teddy_scalar");
  EXPECT_FALSE(m.simd_active());

  // FindSwar must agree with its portable fallback byte-for-byte.
  const std::string hay =
      "the quick brown fox jumps over the lazy dog and then some";
  for (const std::string needle :
       {"quick", "dog", "zebra", "t", "some", "the"}) {
    for (size_t from = 0; from < 8; ++from) {
      EXPECT_EQ(FindSwar(hay, needle, from),
                FindSwarFallback(hay, needle, from))
          << needle << "@" << from;
    }
  }

  ASSERT_EQ(unsetenv("CIAO_DISABLE_SIMD"), 0);
  ReloadSimdDisableMaskForTest();
  EXPECT_FALSE(SimdFeatureDisabled(SimdFeature::kSse2));
}

// ---------- Substring kernel dispatch ----------

TEST(ResolveSearchKernelTest, MeasuredWinnerOverridesConfigured) {
  HardwareProfile p = MakeCalibratedProfile();
  // MakeCalibratedProfile measures swar fastest (2600 MB/s).
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kStdFind, &p),
            SearchKernel::kSwar);
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kSwar, &p),
            SearchKernel::kSwar);

  // Re-rank: memchr measured fastest -> memchr wins regardless of config.
  for (auto& point : p.search_kernel_bench) {
    if (point.kernel == "memchr") point.mbps = 9000.0;
  }
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kHorspool, &p),
            SearchKernel::kMemchr);
}

TEST(ResolveSearchKernelTest, FallsBackToConfiguredWithoutSignal) {
  // No profile at all.
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kHorspool, nullptr),
            SearchKernel::kHorspool);
  // Uncalibrated profile.
  HardwareProfile p = MakeCalibratedProfile();
  p.calibrated = false;
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kMemchr, &p),
            SearchKernel::kMemchr);
  // Calibrated but no substring sweep (an older profile file).
  p = MakeCalibratedProfile();
  p.search_kernel_bench.clear();
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kStdFind, &p),
            SearchKernel::kStdFind);
  // Foreign kernel names only (a newer profile): skipped, not trusted.
  p.search_kernel_bench = {{"quantum_find", 99999.0}};
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kStdFind, &p),
            SearchKernel::kStdFind);
  // Zero-rate measurements carry no signal either.
  p.search_kernel_bench = {{"swar", 0.0}};
  EXPECT_EQ(ResolveSearchKernel(SearchKernel::kMemchr, &p),
            SearchKernel::kMemchr);
}

// ---------- Relayout seed ----------

TEST(ResolveRewriteSeedTest, ProfilePresentWinsElseConfigured) {
  HardwareProfile p = MakeCalibratedProfile();
  EXPECT_DOUBLE_EQ(ResolveRewriteSeedRps(2.5e5, &p), 750000.0);
  EXPECT_DOUBLE_EQ(ResolveRewriteSeedRps(2.5e5, nullptr), 2.5e5);
  p.rewrite_rows_per_second = 0.0;  // uncalibrated field -> configured
  EXPECT_DOUBLE_EQ(ResolveRewriteSeedRps(2.5e5, &p), 2.5e5);
  EXPECT_DOUBLE_EQ(ResolveRewriteSeedRps(0.0, nullptr), 1.0);  // floor
}

// ---------- Calibration smoke ----------

TEST(CalibrateHostTest, QuickPassProducesConsistentProfile) {
  AutotuneOptions options;
  options.quick = true;
  options.scale = 0.05;  // sub-second smoke pass
  options.name = "smoke";
  auto profile = CalibrateHost(options);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_TRUE(profile->calibrated);
  EXPECT_EQ(profile->name, "smoke");
  EXPECT_FALSE(profile->kernel_bench.empty());
  for (const KernelBenchPoint& p : profile->kernel_bench) {
    EXPECT_GT(p.mbps, 0.0) << p.engine;
  }
  // The substring-kernel sweep covers every dispatchable kernel, so the
  // resolved kernel is always backed by a measurement.
  EXPECT_EQ(profile->search_kernel_bench.size(), AllSearchKernels().size());
  for (const SearchKernelBenchPoint& p : profile->search_kernel_bench) {
    EXPECT_GT(p.mbps, 0.0) << p.kernel;
  }
  EXPECT_GT(profile->tape_parse_mbps, 0.0);
  EXPECT_GT(profile->columnar_decode_mbps, 0.0);
  EXPECT_GT(profile->bitvector_mbits_per_second, 0.0);
  EXPECT_GT(profile->rewrite_rows_per_second, 0.0);
  EXPECT_FALSE(profile->cache_probe.empty());
  // The persisted form round-trips (SaveProfile re-validates internally).
  const std::string path = TempPath("autotune_smoke.json");
  ASSERT_TRUE(SaveProfile(*profile, path).ok());
  auto back = LoadProfile(path);
  ASSERT_TRUE(back.ok());
  ExpectProfilesEqual(*profile, *back);
  std::remove(path.c_str());
}

// ---------- Per-client profile re-pricing ----------

TEST(FleetProfileTest, ClientProfileChangesAffordableSet) {
  // Planned costs price both predicates at 5 µs: a 6 µs budget affords
  // only one. A client whose measured surface is ~100x cheaper affords
  // both — same registry, same budget, different hardware.
  auto pushed = workload::MicroTierPredicates(0.15);
  PredicateRegistry registry;
  ASSERT_TRUE(registry.Register(pushed[0], 0.2, 5.0).ok());
  ASSERT_TRUE(registry.Register(pushed[1], 0.3, 5.0).ok());
  registry.set_matcher_mode(ClientMatcherMode::kPerPattern);
  registry.set_mean_record_len(200.0);

  const BudgetAllocation planned = AllocateForBudget(registry, 6.0);
  EXPECT_EQ(planned.ids.size(), 1u);

  auto fast = std::make_shared<HardwareProfile>(MakeCalibratedProfile());
  fast->true_coeffs = {1e-4, 1e-5, 1e-4, 1e-5, 1e-3};
  const BudgetAllocation repriced =
      AllocateForBudget(registry, 6.0, fast.get());
  EXPECT_EQ(repriced.ids.size(), 2u);

  // An uncalibrated profile must be byte-identical to the planned path.
  auto preset = std::make_shared<HardwareProfile>(LocalServerProfile());
  ASSERT_FALSE(preset->calibrated);
  const BudgetAllocation unchanged =
      AllocateForBudget(registry, 6.0, preset.get());
  EXPECT_EQ(unchanged.ids, planned.ids);
  EXPECT_DOUBLE_EQ(unchanged.cost_us, planned.cost_us);
}

TEST(FleetProfileTest, ProfiledCostModelFallsBackWithoutProfile) {
  SetActiveHardwareProfile(nullptr);
  const CostModel fallback = CostModel::Default();
  const CostModel got = ProfiledCostModel(fallback);
  EXPECT_DOUBLE_EQ(got.PredictUs(0.5, 8.0, 200.0),
                   fallback.PredictUs(0.5, 8.0, 200.0));

  auto profile = std::make_shared<HardwareProfile>(MakeCalibratedProfile());
  SetActiveHardwareProfile(profile);
  const CostModel seeded = ProfiledCostModel(fallback);
  CostModel expect(profile->true_coeffs, profile->fit_r_squared);
  EXPECT_DOUBLE_EQ(seeded.PredictUs(0.5, 8.0, 200.0),
                   expect.PredictUs(0.5, 8.0, 200.0));
  SetActiveHardwareProfile(nullptr);
}

}  // namespace
}  // namespace ciao
