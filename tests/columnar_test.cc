#include <gtest/gtest.h>

#include "columnar/encoding.h"
#include "columnar/file_reader.h"
#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/random.h"
#include "json/parser.h"

namespace ciao::columnar {
namespace {

// ---------- Schema ----------

TEST(SchemaTest, FieldIndexAndSerialization) {
  Schema schema({{"a", ColumnType::kInt64},
                 {"b.c", ColumnType::kString},
                 {"d", ColumnType::kBool}});
  EXPECT_EQ(schema.FieldIndex("a"), 0);
  EXPECT_EQ(schema.FieldIndex("b.c"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);

  std::string buf;
  schema.SerializeTo(&buf);
  size_t offset = 0;
  auto decoded = Schema::Deserialize(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_TRUE(*decoded == schema);
}

TEST(SchemaTest, DeserializeRejectsBadType) {
  Schema schema({{"a", ColumnType::kInt64}});
  std::string buf;
  schema.SerializeTo(&buf);
  buf.back() = '\x7F';  // invalid type byte
  size_t offset = 0;
  EXPECT_TRUE(Schema::Deserialize(buf, &offset).status().IsCorruption());
}

TEST(SchemaTest, TypeNames) {
  EXPECT_EQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_EQ(ColumnTypeName(ColumnType::kString), "string");
}

// ---------- ColumnVector ----------

TEST(ColumnVectorTest, TypedAppendAndGet) {
  ColumnVector ints(ColumnType::kInt64);
  ints.AppendInt64(5);
  ints.AppendNull();
  ints.AppendInt64(-7);
  EXPECT_EQ(ints.size(), 3u);
  EXPECT_TRUE(ints.IsValid(0));
  EXPECT_FALSE(ints.IsValid(1));
  EXPECT_EQ(ints.GetInt64(2), -7);
  EXPECT_EQ(ints.NullCount(), 1u);
  EXPECT_EQ(ints.GetNumeric(0), 5.0);

  ColumnVector strs(ColumnType::kString);
  strs.AppendString("hello");
  strs.AppendNull();
  strs.AppendString("");
  strs.AppendString("world");
  EXPECT_EQ(strs.GetString(0), "hello");
  EXPECT_EQ(strs.GetString(2), "");
  EXPECT_EQ(strs.GetString(3), "world");

  ColumnVector bools(ColumnType::kBool);
  bools.AppendBool(true);
  bools.AppendBool(false);
  EXPECT_TRUE(bools.GetBool(0));
  EXPECT_FALSE(bools.GetBool(1));
}

TEST(ColumnVectorTest, Equals) {
  ColumnVector a(ColumnType::kString), b(ColumnType::kString);
  a.AppendString("x");
  a.AppendNull();
  b.AppendString("x");
  b.AppendNull();
  EXPECT_TRUE(a.Equals(b));
  b.AppendString("y");
  EXPECT_FALSE(a.Equals(b));
}

// ---------- Encoding round trips ----------

ColumnVector RandomColumn(ColumnType type, size_t rows, Rng* rng,
                          size_t distinct_strings = 1000) {
  ColumnVector col(type);
  for (size_t i = 0; i < rows; ++i) {
    if (rng->NextBool(0.12)) {
      col.AppendNull();
      continue;
    }
    switch (type) {
      case ColumnType::kInt64:
        col.AppendInt64(rng->NextInt(-1000000, 1000000));
        break;
      case ColumnType::kDouble:
        col.AppendDouble(rng->NextDouble() * 1000 - 500);
        break;
      case ColumnType::kBool:
        col.AppendBool(rng->NextBool());
        break;
      case ColumnType::kString:
        col.AppendString("v" +
                         std::to_string(rng->NextBounded(distinct_strings)));
        break;
    }
  }
  return col;
}

class EncodingRoundTripTest : public ::testing::TestWithParam<ColumnType> {};

TEST_P(EncodingRoundTripTest, RoundTripsWithNulls) {
  Rng rng(77);
  for (const size_t rows : {0u, 1u, 17u, 64u, 257u}) {
    const ColumnVector col = RandomColumn(GetParam(), rows, &rng);
    std::string buf;
    EncodeColumn(col, &buf);
    size_t offset = 0;
    auto decoded = DecodeColumn(buf, &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(offset, buf.size());
    EXPECT_TRUE(decoded->Equals(col)) << "rows=" << rows;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, EncodingRoundTripTest,
                         ::testing::Values(ColumnType::kInt64,
                                           ColumnType::kDouble,
                                           ColumnType::kBool,
                                           ColumnType::kString),
                         [](const auto& info) {
                           return std::string(ColumnTypeName(info.param));
                         });

TEST(EncodingTest, DictionaryKicksInForLowCardinality) {
  Rng rng(79);
  // 256 rows over 4 distinct values -> dictionary.
  const ColumnVector low = RandomColumn(ColumnType::kString, 256, &rng, 4);
  std::string low_buf;
  EncodeColumn(low, &low_buf);
  // encoding byte is at offset 1.
  EXPECT_EQ(static_cast<Encoding>(low_buf[1]), Encoding::kDictionary);

  // 64 rows of unique values -> plain.
  ColumnVector high(ColumnType::kString);
  for (int i = 0; i < 64; ++i) high.AppendString("unique_" + std::to_string(i));
  std::string high_buf;
  EncodeColumn(high, &high_buf);
  EXPECT_EQ(static_cast<Encoding>(high_buf[1]), Encoding::kPlain);

  // Dictionary round-trips.
  size_t offset = 0;
  auto decoded = DecodeColumn(low_buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Equals(low));
}

TEST(EncodingTest, DictionaryHeuristic) {
  EXPECT_TRUE(ShouldDictionaryEncode(4, 256));
  EXPECT_FALSE(ShouldDictionaryEncode(200, 256));  // distinct*2 > rows
  EXPECT_FALSE(ShouldDictionaryEncode(2, 8));      // too few rows
  EXPECT_FALSE(ShouldDictionaryEncode(70000, 200000));  // too wide
}

TEST(EncodingTest, DecodeRejectsCorruptHeaders) {
  ColumnVector col(ColumnType::kInt64);
  col.AppendInt64(1);
  std::string buf;
  EncodeColumn(col, &buf);
  {
    std::string bad = buf;
    bad[0] = '\x7F';  // type byte
    size_t offset = 0;
    EXPECT_TRUE(DecodeColumn(bad, &offset).status().IsCorruption());
  }
  {
    std::string bad = buf;
    bad[1] = '\x7F';  // encoding byte
    size_t offset = 0;
    EXPECT_TRUE(DecodeColumn(bad, &offset).status().IsCorruption());
  }
  {
    size_t offset = 0;
    EXPECT_TRUE(DecodeColumn(buf.substr(0, buf.size() / 2), &offset)
                    .status()
                    .IsCorruption());
  }
}

// ---------- RecordBatch ----------

RecordBatch MakeBatch(size_t rows, Rng* rng) {
  Schema schema({{"id", ColumnType::kInt64},
                 {"score", ColumnType::kDouble},
                 {"flag", ColumnType::kBool},
                 {"tag", ColumnType::kString}});
  RecordBatch batch(schema);
  for (size_t i = 0; i < rows; ++i) {
    batch.mutable_column(0)->AppendInt64(static_cast<int64_t>(i));
    batch.mutable_column(1)->AppendDouble(rng->NextDouble());
    batch.mutable_column(2)->AppendBool(rng->NextBool());
    if (rng->NextBool(0.1)) {
      batch.mutable_column(3)->AppendNull();
    } else {
      batch.mutable_column(3)->AppendString("t" +
                                            std::to_string(rng->NextBounded(5)));
    }
  }
  return batch;
}

TEST(RecordBatchTest, ValidateAndLookup) {
  Rng rng(83);
  RecordBatch batch = MakeBatch(10, &rng);
  EXPECT_TRUE(batch.Validate().ok());
  EXPECT_EQ(batch.num_rows(), 10u);
  EXPECT_EQ(batch.num_columns(), 4u);
  EXPECT_NE(batch.ColumnByName("score"), nullptr);
  EXPECT_EQ(batch.ColumnByName("nope"), nullptr);

  // Ragged batch fails validation.
  batch.mutable_column(0)->AppendInt64(99);
  EXPECT_FALSE(batch.Validate().ok());
}

// ---------- File writer / reader ----------

TEST(TableFileTest, WriteReadRoundTripWithAnnotations) {
  Rng rng(85);
  RecordBatch batch1 = MakeBatch(100, &rng);
  RecordBatch batch2 = MakeBatch(37, &rng);

  BitVectorSet ann1(2, 100), ann2(2, 37);
  for (size_t r = 0; r < 100; ++r) {
    ann1.mutable_vector(0)->Set(r, rng.NextBool());
    ann1.mutable_vector(1)->Set(r, rng.NextBool());
  }
  for (size_t r = 0; r < 37; ++r) ann2.mutable_vector(0)->Set(r, true);

  TableWriter writer(batch1.schema());
  ASSERT_TRUE(writer.AppendRowGroup(batch1, ann1).ok());
  ASSERT_TRUE(writer.AppendRowGroup(batch2, ann2).ok());
  EXPECT_EQ(writer.num_row_groups(), 2u);
  const std::string file = std::move(writer).Finish();

  auto reader = TableReader::Open(file);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_row_groups(), 2u);
  EXPECT_TRUE(reader->schema() == batch1.schema());
  EXPECT_EQ(*reader->TotalRows(), 137u);

  auto meta1 = reader->ReadMeta(0);
  ASSERT_TRUE(meta1.ok());
  EXPECT_EQ(meta1->num_rows, 100u);
  EXPECT_TRUE(meta1->annotations == ann1);
  ASSERT_EQ(meta1->zone_maps.size(), 4u);
  EXPECT_TRUE(meta1->zone_maps[0].has_minmax);  // id column
  EXPECT_EQ(meta1->zone_maps[0].min, 0.0);
  EXPECT_EQ(meta1->zone_maps[0].max, 99.0);
  EXPECT_FALSE(meta1->zone_maps[3].has_minmax);  // string column

  auto decoded1 = reader->ReadBatch(0);
  ASSERT_TRUE(decoded1.ok());
  EXPECT_TRUE(decoded1->Equals(batch1));
  auto decoded2 = reader->ReadBatch(1);
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(decoded2->Equals(batch2));

  EXPECT_TRUE(reader->ReadMeta(2).status().IsOutOfRange());
  EXPECT_TRUE(reader->ReadBatch(2).status().IsOutOfRange());
}

TEST(TableFileTest, EmptyAnnotationsAllowed) {
  Rng rng(87);
  RecordBatch batch = MakeBatch(10, &rng);
  TableWriter writer(batch.schema());
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  auto reader = TableReader::Open(std::move(writer).Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadMeta(0)->annotations.num_predicates(), 0u);
}

TEST(TableFileTest, AnnotationLengthMismatchRejected) {
  Rng rng(89);
  RecordBatch batch = MakeBatch(10, &rng);
  TableWriter writer(batch.schema());
  EXPECT_FALSE(writer.AppendRowGroup(batch, BitVectorSet(1, 9)).ok());
}

TEST(TableFileTest, SchemaMismatchRejected) {
  Rng rng(91);
  RecordBatch batch = MakeBatch(5, &rng);
  TableWriter writer(Schema({{"other", ColumnType::kInt64}}));
  EXPECT_FALSE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
}

TEST(TableFileTest, OpenRejectsCorruptFraming) {
  Rng rng(93);
  RecordBatch batch = MakeBatch(20, &rng);
  TableWriter writer(batch.schema());
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  const std::string file = std::move(writer).Finish();

  EXPECT_TRUE(TableReader::Open("not a file").status().IsCorruption());
  EXPECT_TRUE(TableReader::Open("").status().IsCorruption());

  {
    std::string bad = file;
    bad[0] = 'X';  // magic
    EXPECT_TRUE(TableReader::Open(bad).status().IsCorruption());
  }
  {
    std::string bad = file.substr(0, file.size() - 4);  // truncated footer
    EXPECT_TRUE(TableReader::Open(bad).status().IsCorruption());
  }
}

TEST(TableFileTest, CrcDetectsBodyCorruption) {
  Rng rng(95);
  RecordBatch batch = MakeBatch(50, &rng);
  TableWriter writer(batch.schema());
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  std::string file = std::move(writer).Finish();

  // Flip one byte somewhere in the middle (column payload area).
  file[file.size() / 2] ^= 0x01;
  auto reader = TableReader::Open(file);
  // Framing may still parse; reading the batch must fail.
  if (reader.ok()) {
    EXPECT_FALSE(reader->ReadBatch(0).ok());
  }
}

TEST(TableFileTest, ProjectedReadDecodesOnlyWantedColumns) {
  Rng rng(96);
  RecordBatch batch = MakeBatch(40, &rng);
  TableWriter writer(batch.schema());
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  const std::string file = std::move(writer).Finish();
  auto reader = TableReader::Open(file);
  ASSERT_TRUE(reader.ok());

  std::vector<bool> wanted = {false, true, false, true};  // score, tag
  auto projected = reader->ReadBatchProjected(0, wanted);
  ASSERT_TRUE(projected.ok());
  // Wanted columns round-trip; unwanted stay empty placeholders.
  EXPECT_TRUE(projected->column(1).Equals(batch.column(1)));
  EXPECT_TRUE(projected->column(3).Equals(batch.column(3)));
  EXPECT_EQ(projected->column(0).size(), 0u);
  EXPECT_EQ(projected->column(2).size(), 0u);

  // Mask size must match the schema.
  EXPECT_TRUE(reader->ReadBatchProjected(0, {true, true})
                  .status()
                  .IsInvalidArgument());
}

TEST(TableFileTest, OpenBorrowedDoesNotCopy) {
  Rng rng(97);
  RecordBatch batch = MakeBatch(30, &rng);
  TableWriter writer(batch.schema());
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  const std::string file = std::move(writer).Finish();

  auto reader = TableReader::OpenBorrowed(file);
  ASSERT_TRUE(reader.ok());
  auto decoded = reader->ReadBatch(0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Equals(batch));
}

// ---------- Column-grouped (v4) bodies ----------

TEST(ColumnGroupLayoutTest, FactoriesAndValidate) {
  const ColumnGroupLayout single = ColumnGroupLayout::SingleGroup(4);
  ASSERT_EQ(single.groups.size(), 1u);
  EXPECT_EQ(single.groups[0], (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(single.Validate(4).ok());

  const ColumnGroupLayout per_col = ColumnGroupLayout::PerColumn(3);
  ASSERT_EQ(per_col.groups.size(), 3u);
  EXPECT_TRUE(per_col.Validate(3).ok());
  EXPECT_TRUE(ColumnGroupLayout{}.empty());

  ColumnGroupLayout bad;
  bad.groups = {{0, 1}, {1, 2}};  // duplicate column 1
  EXPECT_TRUE(bad.Validate(3).IsInvalidArgument());
  bad.groups = {{0}, {2}};  // column 1 uncovered
  EXPECT_TRUE(bad.Validate(3).IsInvalidArgument());
  bad.groups = {{0, 1, 2, 3}};  // index out of range
  EXPECT_TRUE(bad.Validate(3).IsInvalidArgument());
  bad.groups = {{0, 1, 2}, {}};  // empty group
  EXPECT_TRUE(bad.Validate(3).IsInvalidArgument());
}

TEST(TableFileTest, GroupedBodyRoundTripsAllLayouts) {
  Rng rng(101);
  RecordBatch batch1 = MakeBatch(60, &rng);
  RecordBatch batch2 = MakeBatch(23, &rng);
  BitVectorSet ann(1, 60);
  for (size_t r = 0; r < 60; ++r) ann.mutable_vector(0)->Set(r, rng.NextBool());

  ColumnGroupLayout mined;
  mined.groups = {{0, 2}, {1, 3}};
  for (const ColumnGroupLayout& layout :
       {ColumnGroupLayout::SingleGroup(4), ColumnGroupLayout::PerColumn(4),
        mined}) {
    TableWriter writer(batch1.schema(), layout);
    ASSERT_TRUE(writer.AppendRowGroup(batch1, ann).ok());
    ASSERT_TRUE(writer.AppendRowGroup(batch2, BitVectorSet()).ok());
    auto reader = TableReader::Open(std::move(writer).Finish());
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();

    // Header metadata is layout-independent.
    auto meta = reader->ReadMeta(0);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta->num_rows, 60u);
    EXPECT_TRUE(meta->annotations == ann);

    // Whole-batch decode is byte-identical to the input.
    auto decoded1 = reader->ReadBatch(0);
    ASSERT_TRUE(decoded1.ok()) << decoded1.status().ToString();
    EXPECT_TRUE(decoded1->Equals(batch1));
    auto decoded2 = reader->ReadBatch(1);
    ASSERT_TRUE(decoded2.ok());
    EXPECT_TRUE(decoded2->Equals(batch2));
  }
}

TEST(TableFileTest, GroupedProjectedReadTouchesOnlyCoveringChunks) {
  Rng rng(103);
  RecordBatch batch = MakeBatch(80, &rng);
  ColumnGroupLayout layout;
  layout.groups = {{0, 1}, {2, 3}};
  TableWriter writer(batch.schema(), layout);
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  const std::string file = std::move(writer).Finish();
  auto reader = TableReader::Open(file);
  ASSERT_TRUE(reader.ok());

  // Wanting only column 0 decodes chunk {0,1}: its chunk-mate column 1
  // rides along (counted as waste), chunk {2,3} is never touched.
  DecodeStats stats;
  auto projected = reader->ReadBatchProjected(0, {true, false, false, false},
                                              &stats);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  EXPECT_TRUE(projected->column(0).Equals(batch.column(0)));
  EXPECT_TRUE(projected->column(1).Equals(batch.column(1)));
  EXPECT_EQ(projected->column(2).size(), 0u);
  EXPECT_EQ(projected->column(3).size(), 0u);
  EXPECT_EQ(stats.columns_decoded, 2u);
  EXPECT_GT(stats.bytes_decoded, 0u);
  EXPECT_GT(stats.bytes_wasted, 0u);
  EXPECT_LT(stats.bytes_wasted, stats.bytes_decoded);

  // A mask covering both chunks decodes everything with no waste beyond
  // unwanted chunk-mates (here: none — all four columns wanted).
  DecodeStats all_stats;
  auto all = reader->ReadBatchProjected(0, {true, true, true, true},
                                        &all_stats);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all_stats.columns_decoded, 4u);
  EXPECT_EQ(all_stats.bytes_wasted, 0u);
  EXPECT_GT(all_stats.bytes_decoded, stats.bytes_decoded);

  // Per-column layout: exactly the wanted column, zero waste.
  TableWriter pc_writer(batch.schema(), ColumnGroupLayout::PerColumn(4));
  ASSERT_TRUE(pc_writer.AppendRowGroup(batch, BitVectorSet()).ok());
  auto pc_reader = TableReader::Open(std::move(pc_writer).Finish());
  ASSERT_TRUE(pc_reader.ok());
  DecodeStats pc_stats;
  auto pc = pc_reader->ReadBatchProjected(0, {false, false, false, true},
                                          &pc_stats);
  ASSERT_TRUE(pc.ok());
  EXPECT_TRUE(pc->column(3).Equals(batch.column(3)));
  EXPECT_EQ(pc_stats.columns_decoded, 1u);
  EXPECT_EQ(pc_stats.bytes_wasted, 0u);
}

TEST(TableFileTest, GroupedChunkCrcIsolatesCorruption) {
  // A fat unique marker makes the string column's chunk easy to find in
  // the file bytes so the corruption lands in exactly one chunk.
  Schema schema({{"id", ColumnType::kInt64}, {"tag", ColumnType::kString}});
  RecordBatch batch(schema);
  const std::string marker = "CHUNK-CORRUPTION-MARKER-PAYLOAD";
  for (size_t i = 0; i < 32; ++i) {
    batch.mutable_column(0)->AppendInt64(static_cast<int64_t>(i));
    batch.mutable_column(1)->AppendString(marker + std::to_string(i));
  }
  TableWriter writer(schema, ColumnGroupLayout::PerColumn(2));
  ASSERT_TRUE(writer.AppendRowGroup(batch, BitVectorSet()).ok());
  std::string file = std::move(writer).Finish();

  const size_t pos = file.find(marker);
  ASSERT_NE(pos, std::string::npos);
  file[pos] ^= 0x01;

  auto reader = TableReader::OpenBorrowed(file);  // kVerify
  ASSERT_TRUE(reader.ok());
  // The untouched id chunk still reads and verifies.
  DecodeStats stats;
  auto ids = reader->ReadBatchProjected(0, {true, false}, &stats);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_TRUE(ids->column(0).Equals(batch.column(0)));
  // Touching the corrupted tag chunk fails its CRC.
  EXPECT_TRUE(
      reader->ReadBatchProjected(0, {false, true}).status().IsCorruption());
  EXPECT_FALSE(reader->ReadBatch(0).ok());
  // kTrust skips the check (in-process bytes); decode still proceeds.
  auto trusting = TableReader::OpenBorrowed(file, ChecksumMode::kTrust);
  ASSERT_TRUE(trusting.ok());
  (void)trusting->ReadBatchProjected(0, {true, false});
}

TEST(TableFileTest, GroupedWriterRejectsInvalidLayout) {
  Rng rng(105);
  RecordBatch batch = MakeBatch(5, &rng);
  ColumnGroupLayout bad;
  bad.groups = {{0, 1}};  // does not cover columns 2, 3
  TableWriter writer(batch.schema(), bad);
  EXPECT_TRUE(
      writer.AppendRowGroup(batch, BitVectorSet()).IsInvalidArgument());
}

// ---------- JSON converter ----------

TEST(ConverterTest, SchemaDropsAndCoerces) {
  Schema schema({{"i", ColumnType::kInt64},
                 {"d", ColumnType::kDouble},
                 {"b", ColumnType::kBool},
                 {"s", ColumnType::kString},
                 {"nested.x", ColumnType::kInt64}});
  BatchBuilder builder(schema);
  ASSERT_TRUE(builder
                  .AppendSerialized(
                      R"({"i":4,"d":2.5,"b":true,"s":"hi","nested":{"x":7}})")
                  .ok());
  // Missing fields and nulls -> NULL.
  ASSERT_TRUE(builder.AppendSerialized(R"({"i":null,"s":"yo"})").ok());
  // Int promotes to double column; type mismatch counts coercion error.
  ASSERT_TRUE(builder.AppendSerialized(R"({"i":"oops","d":3})").ok());

  EXPECT_EQ(builder.coercion_errors(), 1u);
  EXPECT_EQ(builder.parse_errors(), 0u);
  RecordBatch batch = builder.Finish();
  ASSERT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.column(0).GetInt64(0), 4);
  EXPECT_FALSE(batch.column(0).IsValid(1));
  EXPECT_FALSE(batch.column(0).IsValid(2));  // "oops" mismatched
  EXPECT_EQ(batch.column(1).GetDouble(2), 3.0);
  EXPECT_EQ(batch.column(4).GetInt64(0), 7);
  EXPECT_FALSE(batch.column(4).IsValid(1));
}

TEST(ConverterTest, MalformedRecordCountsParseError) {
  BatchBuilder builder(Schema({{"a", ColumnType::kInt64}}));
  EXPECT_FALSE(builder.AppendSerialized("{broken").ok());
  EXPECT_EQ(builder.parse_errors(), 1u);
  EXPECT_EQ(builder.num_rows(), 0u);
}

TEST(ConverterTest, FinishResets) {
  BatchBuilder builder(Schema({{"a", ColumnType::kInt64}}));
  ASSERT_TRUE(builder.AppendSerialized(R"({"a":1})").ok());
  EXPECT_EQ(builder.Finish().num_rows(), 1u);
  EXPECT_EQ(builder.num_rows(), 0u);
  ASSERT_TRUE(builder.AppendSerialized(R"({"a":2})").ok());
  EXPECT_EQ(builder.Finish().num_rows(), 1u);
}

TEST(ConverterTest, InferSchema) {
  std::vector<json::Value> samples;
  samples.push_back(*json::Parse(
      R"({"i":1,"s":"x","b":true,"d":1.5,"nest":{"k":2},"arr":[1,2]})"));
  samples.push_back(*json::Parse(R"({"i":2.5,"s":"y","skip":null})"));

  const Schema schema = InferSchema(samples);
  // "i" promoted int->double; "arr" skipped; "nest.k" dotted.
  const int i_idx = schema.FieldIndex("i");
  ASSERT_GE(i_idx, 0);
  EXPECT_EQ(schema.field(static_cast<size_t>(i_idx)).type,
            ColumnType::kDouble);
  EXPECT_GE(schema.FieldIndex("s"), 0);
  EXPECT_GE(schema.FieldIndex("b"), 0);
  EXPECT_GE(schema.FieldIndex("nest.k"), 0);
  EXPECT_EQ(schema.FieldIndex("arr"), -1);
  EXPECT_EQ(schema.FieldIndex("skip"), -1);
}

TEST(ConverterTest, InferSchemaDropsHardConflicts) {
  std::vector<json::Value> samples;
  samples.push_back(*json::Parse(R"({"x":1})"));
  samples.push_back(*json::Parse(R"({"x":"str"})"));
  EXPECT_EQ(InferSchema(samples).FieldIndex("x"), -1);
}

}  // namespace
}  // namespace ciao::columnar
