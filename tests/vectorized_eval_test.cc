// The vectorized batch-at-a-time evaluator (engine/vectorized_eval.h).
// Load-bearing assertions:
//
//  * on random schemas/batches — nulls, NaN/inf, empty strings,
//    dictionary and plain string columns, batch sizes 0/1/word-boundary±1
//    — every VectorizedQuery bit equals the row-wise CompiledTypedQuery
//    oracle, with and without a selection vector,
//  * the executor produces identical counts AND identical scan stats
//    under query_eval=rowwise and =vectorized on full-scan, skipping, and
//    stale-epoch paths,
//  * vectorized queries running concurrently with sideline promotions
//    stay exact (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "columnar/encoding.h"
#include "columnar/record_batch.h"
#include "common/random.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "engine/typed_eval.h"
#include "engine/vectorized_eval.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/jit_loader.h"
#include "storage/partial_loader.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

// ---------- Random batch machinery ----------

columnar::Schema FuzzSchema() {
  return columnar::Schema({{"i", columnar::ColumnType::kInt64},
                           {"d", columnar::ColumnType::kDouble},
                           {"b", columnar::ColumnType::kBool},
                           {"s", columnar::ColumnType::kString},
                           {"t", columnar::ColumnType::kString}});
}

// Low-cardinality pool for column "t" so the encode/decode round trip
// dictionary-encodes it (distinct*2 <= rows once rows >= 16).
const char* kTags[] = {"red", "green", "blue", ""};
const char* kWords[] = {"alpha", "beta", "gamma-ray", "delta",
                        "a longer string payload", ""};

/// Encode/decode round trip: the only way rows acquire a dictionary view,
/// exactly as segment scans see them after TableReader decodes a group.
columnar::ColumnVector RoundTrip(const columnar::ColumnVector& col) {
  std::string buf;
  columnar::EncodeColumn(col, &buf);
  size_t offset = 0;
  auto decoded = columnar::DecodeColumn(buf, &offset);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), col.size());
  // Not Equals(): the fuzz batches carry NaN doubles, which Equals
  // compares with `!=` and reports as a mismatch.
  return std::move(decoded).value();
}

columnar::RecordBatch BuildFuzzBatch(Rng& rng, size_t rows, double null_p) {
  const columnar::Schema schema = FuzzSchema();
  columnar::RecordBatch batch(schema);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      columnar::ColumnVector* col = batch.mutable_column(c);
      if (rng.NextDouble() < null_p) {
        col->AppendNull();
        continue;
      }
      switch (schema.field(c).type) {
        case columnar::ColumnType::kInt64:
          col->AppendInt64(rng.NextInt(-3, 6));
          break;
        case columnar::ColumnType::kDouble:
          switch (rng.NextBounded(6)) {
            case 0:
              col->AppendDouble(std::numeric_limits<double>::quiet_NaN());
              break;
            case 1:
              col->AppendDouble(std::numeric_limits<double>::infinity());
              break;
            default:
              col->AppendDouble(static_cast<double>(rng.NextInt(-4, 4)) * 0.75);
          }
          break;
        case columnar::ColumnType::kBool:
          col->AppendBool(rng.NextBounded(2) == 0);
          break;
        case columnar::ColumnType::kString:
          if (schema.field(c).name == "t") {
            col->AppendString(kTags[rng.NextBounded(std::size(kTags))]);
          } else {
            std::string v = kWords[rng.NextBounded(std::size(kWords))];
            if (rng.NextBounded(3) == 0) {
              v += "-" + std::to_string(rng.NextBounded(4));
            }
            col->AppendString(v);
          }
          break;
      }
    }
  }
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    *batch.mutable_column(c) = RoundTrip(batch.column(c));
  }
  return batch;
}

SimplePredicate RandomTerm(Rng& rng) {
  const columnar::Schema schema = FuzzSchema();
  const size_t c = rng.NextBounded(schema.num_fields());
  const std::string field = schema.field(c).name;
  // Operand pool spanning hits, misses, and deliberate type mismatches
  // (the oracle's constant-false cases must stay constant-false).
  auto random_operand = [&]() -> json::Value {
    switch (rng.NextBounded(7)) {
      case 0:
        return json::Value(static_cast<int64_t>(rng.NextInt(-3, 6)));
      case 1:
        return json::Value(static_cast<double>(rng.NextInt(-4, 4)) * 0.75);
      case 2:
        return json::Value(rng.NextBounded(2) == 0);
      case 3:
        return json::Value(kTags[rng.NextBounded(std::size(kTags))]);
      case 4:
        return json::Value(kWords[rng.NextBounded(std::size(kWords))]);
      case 5:
        return json::Value(std::numeric_limits<double>::quiet_NaN());
      default:
        return json::Value("zzz-matches-nothing");
    }
  };
  switch (rng.NextBounded(5)) {
    case 0:
      return SimplePredicate::Presence(field);
    case 1: {
      const json::Value op = random_operand();
      return SimplePredicate::Exact(
          field, op.is_string() ? op.as_string() : "not-there");
    }
    case 2: {
      // Substrings of real values exercise hits; random tokens, misses.
      static const char* needles[] = {"a",  "lph", "gamma", "-1", "ed",
                                      "zz", "",    "string payload"};
      return SimplePredicate::Substring(field,
                                        needles[rng.NextBounded(std::size(needles))]);
    }
    case 3:
      return SimplePredicate::KeyValue(field, random_operand());
    default:
      return SimplePredicate::RangeLess(field, random_operand());
  }
}

Query RandomQuery(Rng& rng) {
  Query q;
  const size_t n_clauses = 1 + rng.NextBounded(3);
  for (size_t i = 0; i < n_clauses; ++i) {
    Clause clause;
    const size_t n_terms = 1 + rng.NextBounded(3);
    for (size_t t = 0; t < n_terms; ++t) clause.terms.push_back(RandomTerm(rng));
    q.clauses.push_back(std::move(clause));
  }
  return q;
}

void ExpectMatchesOracle(const columnar::RecordBatch& batch, size_t rows,
                         const Query& q, Rng& rng) {
  const columnar::Schema schema = FuzzSchema();
  auto oracle = CompiledTypedQuery::Compile(q, schema);
  auto vectorized = VectorizedQuery::Compile(q, schema);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_TRUE(vectorized.ok()) << vectorized.status().ToString();

  auto full = vectorized->Evaluate(batch, rows);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->size(), rows);
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_EQ(full->Get(r), oracle->Matches(batch, r))
        << "row " << r << " of " << rows << " query " << q.ToSql();
  }

  // Same query through a random selection vector: result must be the
  // oracle restricted to the selection.
  BitVector selection(rows);
  for (size_t r = 0; r < rows; ++r) selection.Set(r, rng.NextBounded(3) != 0);
  auto selected = vectorized->Evaluate(batch, rows, &selection);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_EQ(selected->Get(r), selection.Get(r) && oracle->Matches(batch, r))
        << "selected row " << r << " query " << q.ToSql();
  }
}

// ---------- Differential fuzz vs the row-wise oracle ----------

TEST(VectorizedEvalTest, RandomBatchesAgreeWithRowwiseOracle) {
  Rng rng(271828);
  // Word-boundary sizes on both sides of 64, plus empty and multi-word.
  for (const size_t rows : {0u, 1u, 63u, 64u, 65u, 129u, 1000u}) {
    for (const double null_p : {0.0, 0.25}) {
      const columnar::RecordBatch batch = BuildFuzzBatch(rng, rows, null_p);
      for (int iter = 0; iter < 25; ++iter) {
        ExpectMatchesOracle(batch, rows, RandomQuery(rng), rng);
      }
    }
  }
}

TEST(VectorizedEvalTest, AllMatchAndNoneMatch) {
  Rng rng(7);
  const size_t rows = 192;
  const columnar::RecordBatch batch = BuildFuzzBatch(rng, rows, /*null_p=*/0.0);

  Query all;  // every row valid -> presence matches everything
  all.clauses.push_back(Clause::Of(SimplePredicate::Presence("i")));
  auto vq = VectorizedQuery::Compile(all, FuzzSchema());
  ASSERT_TRUE(vq.ok());
  auto mask = vq->Evaluate(batch, rows);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->CountOnes(), rows);

  Query none;
  none.clauses.push_back(
      Clause::Of(SimplePredicate::Exact("s", "zzz-matches-nothing")));
  auto vn = VectorizedQuery::Compile(none, FuzzSchema());
  ASSERT_TRUE(vn.ok());
  auto none_mask = vn->Evaluate(batch, rows);
  ASSERT_TRUE(none_mask.ok());
  EXPECT_FALSE(none_mask->Any());
}

TEST(VectorizedEvalTest, DictionaryColumnsUseCodeCompare) {
  // 64 rows over 3 distinct tags round-trips to a dictionary column; the
  // equality kernel must agree with the oracle and an operand outside the
  // dictionary must match nothing.
  Rng rng(99);
  const columnar::RecordBatch batch = BuildFuzzBatch(rng, 64, /*null_p=*/0.1);
  ASSERT_TRUE(batch.column(4).has_dictionary())
      << "low-cardinality round trip should retain the dictionary view";

  for (const char* tag : {"red", "green", "blue", "", "not-in-dict"}) {
    Query q;
    q.clauses.push_back(Clause::Of(SimplePredicate::Exact("t", tag)));
    ExpectMatchesOracle(batch, 64, q, rng);
  }
  // Below the encoder's 16-row floor nothing dictionary-encodes, so the
  // same queries go through the len+memcmp kernel path.
  const columnar::RecordBatch plain = BuildFuzzBatch(rng, 12, /*null_p=*/0.1);
  EXPECT_FALSE(plain.column(4).has_dictionary());
  for (const char* tag : {"red", "blue", "not-in-dict"}) {
    Query q;
    q.clauses.push_back(Clause::Of(SimplePredicate::Exact("t", tag)));
    ExpectMatchesOracle(plain, 12, q, rng);
  }
}

TEST(VectorizedEvalTest, CompileAndEvaluateErrors) {
  Query q;
  q.clauses.push_back(Clause::Of(SimplePredicate::KeyValue("ghost", 1)));
  EXPECT_TRUE(
      VectorizedQuery::Compile(q, FuzzSchema()).status().IsInvalidArgument());

  Rng rng(3);
  const columnar::RecordBatch batch = BuildFuzzBatch(rng, 10, 0.0);
  Query ok_query;
  ok_query.clauses.push_back(Clause::Of(SimplePredicate::Presence("i")));
  auto vq = VectorizedQuery::Compile(ok_query, FuzzSchema());
  ASSERT_TRUE(vq.ok());
  BitVector wrong_size(4);
  EXPECT_TRUE(
      vq->Evaluate(batch, 10, &wrong_size).status().IsInvalidArgument());
}

// ---------- Executor parity: rowwise vs vectorized ----------

struct ExecutorFixture {
  workload::Dataset ds;
  std::vector<json::Value> parsed;
  PredicateRegistry registry;
  TableCatalog catalog;
  std::vector<Clause> pushed;

  explicit ExecutorFixture(size_t n = 500, bool partial = true)
      : ds(workload::GenerateWinLog({n, 77})), catalog(ds.schema) {
    for (const std::string& r : ds.records) {
      parsed.push_back(*json::Parse(r));
    }
    pushed = workload::MicroTierPredicates(0.35);
    pushed.resize(2);
    for (const Clause& c : pushed) {
      EXPECT_TRUE(registry.Register(c, 0.35, 1.0).ok());
    }
    PartialLoader loader(ds.schema, registry.size());
    LoadStats stats;
    const size_t chunk_size = 150;  // multiple groups, uneven tail
    for (size_t start = 0; start < ds.records.size(); start += chunk_size) {
      json::JsonChunk chunk;
      const size_t end = std::min(ds.records.size(), start + chunk_size);
      for (size_t i = start; i < end; ++i) {
        chunk.AppendSerialized(ds.records[i]);
      }
      BitVectorSet annotations(registry.size(), chunk.size());
      for (size_t p = 0; p < registry.size(); ++p) {
        const auto& program = registry.Get(static_cast<uint32_t>(p)).program;
        for (size_t r = 0; r < chunk.size(); ++r) {
          if (program.Matches(chunk.Record(r))) {
            annotations.mutable_vector(p)->Set(r, true);
          }
        }
      }
      EXPECT_TRUE(
          loader.IngestChunk(chunk, annotations, partial, &catalog, &stats)
              .ok());
    }
  }

  uint64_t BruteForceCount(const Query& q) const {
    uint64_t count = 0;
    for (const json::Value& v : parsed) {
      if (EvaluateQuery(q, v)) ++count;
    }
    return count;
  }
};

void ExpectSameStats(const ScanStats& a, const ScanStats& b) {
  EXPECT_EQ(a.rows_evaluated, b.rows_evaluated);
  EXPECT_EQ(a.rows_skipped, b.rows_skipped);
  EXPECT_EQ(a.groups_skipped, b.groups_skipped);
  EXPECT_EQ(a.groups_skipped_zonemap, b.groups_skipped_zonemap);
  EXPECT_EQ(a.groups_scanned, b.groups_scanned);
  EXPECT_EQ(a.groups_stale_annotations, b.groups_stale_annotations);
}

TEST(VectorizedExecutorTest, BothModesAgreeOnAllPlanShapes) {
  ExecutorFixture fx(500, /*partial=*/true);
  ExecutorOptions rowwise_opt;
  rowwise_opt.query_eval = QueryEvalMode::kRowwise;
  ExecutorOptions vector_opt;
  vector_opt.query_eval = QueryEvalMode::kVectorized;
  QueryExecutor rowwise(&fx.catalog, &fx.registry, rowwise_opt);
  QueryExecutor vectorized(&fx.catalog, &fx.registry, vector_opt);

  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  const auto other = workload::MicroTierPredicates(0.15);
  Rng rng(4242);

  std::vector<Query> queries;
  for (int i = 0; i < 15; ++i) {
    Query q;
    q.clauses.push_back(pool[rng.NextBounded(pool.size())]);
    if (rng.NextBool()) q.clauses.push_back(pool[rng.NextBounded(pool.size())]);
    queries.push_back(std::move(q));
  }
  {
    Query q;  // skipping-eligible: pushed AND non-pushed clause
    q.clauses = {fx.pushed[0], other[0]};
    queries.push_back(q);
    Query q2;
    q2.clauses = {fx.pushed[0], fx.pushed[1]};
    queries.push_back(q2);
  }

  for (const Query& q : queries) {
    auto r = rowwise.Execute(q);
    auto v = vectorized.Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v->count, r->count) << q.ToSql();
    EXPECT_EQ(v->count, fx.BruteForceCount(q)) << q.ToSql();
    EXPECT_EQ(v->plan, r->plan);
    ExpectSameStats(v->stats, r->stats);

    auto rf = rowwise.ExecuteFullScan(q);
    auto vf = vectorized.ExecuteFullScan(q);
    ASSERT_TRUE(rf.ok() && vf.ok());
    EXPECT_EQ(vf->count, rf->count) << q.ToSql();
    ExpectSameStats(vf->stats, rf->stats);
  }
}

TEST(VectorizedExecutorTest, StaleEpochVerifyPathAgrees) {
  // Annotations are written under epoch 0; querying epoch 1 forces the
  // full typed verify of every group — the stale-segment path must use
  // the vectorized evaluator too and still be exact.
  ExecutorFixture fx(400, /*partial=*/false);
  ExecutorOptions rowwise_opt;
  rowwise_opt.query_eval = QueryEvalMode::kRowwise;
  QueryExecutor rowwise(&fx.catalog, &fx.registry, rowwise_opt);
  QueryExecutor vectorized(&fx.catalog, &fx.registry);  // default vectorized

  Query q;
  q.clauses = {fx.pushed[0]};
  auto r = rowwise.ExecuteWithSkipping(q, {0}, /*epoch_id=*/1);
  auto v = vectorized.ExecuteWithSkipping(q, {0}, /*epoch_id=*/1);
  ASSERT_TRUE(r.ok() && v.ok());
  EXPECT_GT(v->stats.groups_stale_annotations, 0u);
  EXPECT_EQ(v->count, r->count);
  EXPECT_EQ(v->count, fx.BruteForceCount(q));
  ExpectSameStats(v->stats, r->stats);
}

// ---------- Concurrency: vectorized queries vs promotions (TSan) ----------

TEST(VectorizedEvalConcurrencyTest, QueriesDuringPromotionStayExact) {
  // Partial loading sidelines non-matching records; promotion then moves
  // them into columnar segments while query threads hammer both plan
  // shapes with the vectorized evaluator. Every count must be exact
  // before, during, and after the move (the combined snapshot property).
  ExecutorFixture fx(600, /*partial=*/true);
  ASSERT_GT(fx.catalog.raw_rows(), 0u);
  QueryExecutor executor(&fx.catalog, &fx.registry);  // vectorized default

  const auto other = workload::MicroTierPredicates(0.15);
  std::vector<Query> queries;
  {
    Query full;  // full scan: touches segments + sideline
    full.clauses = {other[1]};
    queries.push_back(full);
    Query skipping;
    skipping.clauses = {fx.pushed[0]};
    queries.push_back(skipping);
    Query both;
    both.clauses = {fx.pushed[1], other[2]};
    queries.push_back(both);
  }
  std::vector<uint64_t> expected;
  for (const Query& q : queries) expected.push_back(fx.BruteForceCount(q));

  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<int> wrong{0};
  std::atomic<int> failed{0};
  std::atomic<bool> promoted{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t qi = (static_cast<size_t>(t) + i) % queries.size();
        auto result = executor.Execute(queries[qi]);
        if (!result.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (result->count != expected[qi]) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    JitStats jit;
    Status st = PromoteRawToColumnar(&fx.catalog, fx.registry,
                                     /*annotation_epoch=*/0, &jit);
    EXPECT_TRUE(st.ok()) << st.ToString();
    promoted.store(true, std::memory_order_release);
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_TRUE(promoted.load());
  EXPECT_EQ(fx.catalog.raw_rows(), 0u);

  // Still exact after the sideline is gone.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = executor.Execute(queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected[i]);
  }
}

}  // namespace
}  // namespace ciao
