#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "columnar/file_reader.h"
#include "common/random.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/catalog.h"
#include "storage/jit_loader.h"
#include "storage/partial_loader.h"
#include "storage/raw_store.h"
#include "storage/transport.h"
#include "workload/dataset.h"

namespace ciao {
namespace {

// ---------- RawStore ----------

TEST(RawStoreTest, AppendAndRead) {
  RawStore store;
  EXPECT_TRUE(store.empty());
  store.Append(R"({"a":1})");
  store.Append(R"({"b":2})");
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Record(0), R"({"a":1})");
  EXPECT_EQ(store.Record(1), R"({"b":2})");
  EXPECT_EQ(store.byte_size(), 14u);
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.byte_size(), 0u);
}

// ---------- ChunkMessage ----------

json::JsonChunk MakeChunk(const std::vector<std::string>& records) {
  json::JsonChunk chunk;
  for (const auto& r : records) chunk.AppendSerialized(r);
  return chunk;
}

TEST(ChunkMessageTest, SerializeRoundTrip) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})", R"({"a":2})", R"({"a":3})"});
  msg.predicate_ids = {0, 2};
  msg.annotations = BitVectorSet(2, 3);
  msg.annotations.mutable_vector(0)->Set(1, true);
  msg.annotations.mutable_vector(1)->Set(2, true);

  std::string payload;
  msg.SerializeTo(&payload);
  auto decoded = ChunkMessage::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->chunk.size(), 3u);
  EXPECT_EQ(decoded->chunk.Record(1), R"({"a":2})");
  EXPECT_EQ(decoded->predicate_ids, msg.predicate_ids);
  EXPECT_TRUE(decoded->annotations == msg.annotations);
}

TEST(ChunkMessageTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(ChunkMessage::Deserialize("XXXX").status().IsCorruption());
  EXPECT_TRUE(ChunkMessage::Deserialize("").status().IsCorruption());

  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})"});
  msg.predicate_ids = {0};
  msg.annotations = BitVectorSet(1, 1);
  std::string payload;
  msg.SerializeTo(&payload);
  EXPECT_TRUE(ChunkMessage::Deserialize(payload.substr(0, payload.size() - 3))
                  .status()
                  .IsCorruption());
}

TEST(ChunkMessageTest, ExpandAnnotationsConservative) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})", R"({"a":2})"});
  msg.predicate_ids = {1};  // evaluated only registry id 1
  msg.annotations = BitVectorSet(1, 2);
  msg.annotations.mutable_vector(0)->Set(0, true);

  auto expanded = msg.ExpandAnnotations(3);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->num_predicates(), 3u);
  // Unevaluated predicates 0 and 2: all ones ("maybe").
  EXPECT_TRUE(expanded->vector(0).All());
  EXPECT_TRUE(expanded->vector(2).All());
  // Evaluated predicate 1: the client's exact bits.
  EXPECT_TRUE(expanded->vector(1).Get(0));
  EXPECT_FALSE(expanded->vector(1).Get(1));

  EXPECT_TRUE(msg.ExpandAnnotations(1).status().IsOutOfRange());
}

// ---------- ChunkMessage: evaluated-predicate mask (wire format v2) ----

TEST(ChunkMessageTest, MaskRoundTripsWithTotalPredicates) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})", R"({"a":2})", R"({"a":3})"});
  msg.total_predicates = 5;
  msg.predicate_ids = {1, 3};
  msg.annotations = BitVectorSet(2, 3);
  msg.annotations.mutable_vector(0)->Set(0, true);
  msg.annotations.mutable_vector(1)->Set(2, true);

  std::string payload;
  msg.SerializeTo(&payload);
  EXPECT_EQ(payload.substr(0, 4), "CMG2");
  auto decoded = ChunkMessage::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->total_predicates, 5u);
  EXPECT_EQ(decoded->predicate_ids, msg.predicate_ids);
  EXPECT_TRUE(decoded->annotations == msg.annotations);
  EXPECT_EQ(decoded->MissingIds(5), (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_TRUE(decoded->MissingIds(0).empty());
}

TEST(ChunkMessageTest, LegacyMasklessMessageStillDecodes) {
  // Hand-build a v1 "CMSG" frame (no total_predicates field) the way the
  // pre-mask serializer did: old spools must keep decoding.
  const std::string ndjson = "{\"a\":1}\n{\"a\":2}\n";
  std::string payload = "CMSG";
  const auto put_u32 = [&payload](uint32_t v) {
    payload.append(reinterpret_cast<const char*>(&v), 4);
  };
  put_u32(1);  // n_ids
  put_u32(2);  // the single evaluated id
  const uint64_t len = ndjson.size();
  payload.append(reinterpret_cast<const char*>(&len), 8);
  payload.append(ndjson);
  BitVectorSet annotations(1, 2);
  annotations.mutable_vector(0)->Set(1, true);
  annotations.SerializeTo(&payload);

  auto decoded = ChunkMessage::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->total_predicates, 0u);  // unknown: legacy maskless
  EXPECT_EQ(decoded->predicate_ids, (std::vector<uint32_t>{2}));
  EXPECT_EQ(decoded->chunk.size(), 2u);
  EXPECT_TRUE(decoded->annotations.vector(0).Get(1));
  // Receivers expand against their own registry width, as before.
  auto expanded = decoded->ExpandAnnotations(4);
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->vector(0).All());
  EXPECT_FALSE(expanded->vector(2).Get(0));
}

TEST(ChunkMessageTest, EveryTruncationOfMaskedMessageIsRejected) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})", R"({"a":2})"});
  msg.total_predicates = 3;
  msg.predicate_ids = {0, 2};
  msg.annotations = BitVectorSet(2, 2);
  msg.annotations.mutable_vector(0)->Set(0, true);
  std::string payload;
  msg.SerializeTo(&payload);

  // Every strict prefix must fail cleanly — never crash, never
  // half-decode (the frame ends with the annotation set, so any cut
  // lands inside a required field).
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = ChunkMessage::Deserialize(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

TEST(ChunkMessageTest, EvaluatedIdOutsideMaskIsCorruption) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})"});
  msg.total_predicates = 2;
  msg.predicate_ids = {5};  // outside [0, 2)
  msg.annotations = BitVectorSet(1, 1);
  std::string payload;
  msg.SerializeTo(&payload);
  EXPECT_TRUE(ChunkMessage::Deserialize(payload).status().IsCorruption());
}

TEST(ChunkMessageTest, FlippedMagicIsCorruption) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})"});
  msg.total_predicates = 1;
  msg.predicate_ids = {0};
  msg.annotations = BitVectorSet(1, 1);
  std::string payload;
  msg.SerializeTo(&payload);
  payload[3] = 'X';  // neither CMSG nor CMG2
  EXPECT_TRUE(ChunkMessage::Deserialize(payload).status().IsCorruption());
}

// ---------- Transports ----------

TEST(TransportTest, InMemoryFifo) {
  InMemoryTransport transport;
  ASSERT_TRUE(transport.Send("one").ok());
  ASSERT_TRUE(transport.Send("two").ok());
  EXPECT_EQ(transport.bytes_sent(), 6u);
  EXPECT_EQ(transport.pending(), 2u);
  EXPECT_EQ(**transport.Receive(), "one");
  EXPECT_EQ(**transport.Receive(), "two");
  EXPECT_FALSE(transport.Receive()->has_value());
}

TEST(TransportTest, FileTransportRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ciao_transport_test")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FileTransport transport(dir);
  // Embedded NUL: file transport must be binary-safe.
  ASSERT_TRUE(transport.Send(std::string("payload with \0 binary", 21)).ok());
  ASSERT_TRUE(transport.Send(std::string("second")).ok());
  auto first = transport.Receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(**first, std::string("payload with \0 binary", 21));
  EXPECT_EQ(**transport.Receive(), "second");
  EXPECT_FALSE(transport.Receive()->has_value());
  std::filesystem::remove_all(dir);
}

TEST(TransportTest, FileTransportPublishesAtomicallyNoTempFiles) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ciao_transport_atomic")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FileTransport transport(dir);
  ASSERT_TRUE(transport.Send("alpha").ok());
  ASSERT_TRUE(transport.Send("beta").ok());
  // Publish discipline: after Send returns, the directory holds exactly
  // the renamed message files — no temp residue a concurrent consumer
  // could mistake for a message.
  size_t messages = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name.rfind("msg_", 0) == 0 &&
                name.find(".bin") != std::string::npos)
        << "unexpected file: " << name;
    ++messages;
  }
  EXPECT_EQ(messages, 2u);
  std::filesystem::remove_all(dir);
}

TEST(TransportTest, FileTransportRejectsTruncatedMessage) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ciao_transport_trunc")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const std::string payload = "truncation target payload 0123456789";
  // One sender per truncation point: simulate a torn write (pre-fix Send
  // could leave one; current Send cannot, but a foreign producer or a
  // dying filesystem still can) at every prefix length.
  {
    FileTransport sender(dir);
    ASSERT_TRUE(sender.Send(payload).ok());
  }
  const std::string path = dir + "/msg_00000000.bin";
  const auto full_size = std::filesystem::file_size(path);
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_EQ(full.size(), full_size);

  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    FileTransport receiver(dir);
    auto received = receiver.Receive();
    if (cut == 0) {
      // Empty file: indistinguishable from "not yet published" only in
      // size, but it fails the header check like any other prefix.
      EXPECT_FALSE(received.ok()) << "cut=" << cut;
    } else {
      ASSERT_FALSE(received.ok()) << "cut=" << cut;
      EXPECT_TRUE(received.status().IsCorruption()) << "cut=" << cut;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(TransportTest, FileTransportRejectsCorruptPayload) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ciao_transport_corrupt")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  {
    FileTransport sender(dir);
    ASSERT_TRUE(sender.Send("bytes that will rot").ok());
  }
  const std::string path = dir + "/msg_00000000.bin";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes.back() ^= 0x40;  // flip one payload bit
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  FileTransport receiver(dir);
  auto received = receiver.Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_TRUE(received.status().IsCorruption());
  std::filesystem::remove_all(dir);
}

// ---------- PartialLoader ----------

struct LoaderFixture {
  columnar::Schema schema{{{"a", columnar::ColumnType::kInt64},
                           {"s", columnar::ColumnType::kString}}};
  TableCatalog catalog{schema};
  LoadStats stats;

  json::JsonChunk Chunk(size_t n) {
    json::JsonChunk chunk;
    for (size_t i = 0; i < n; ++i) {
      chunk.AppendSerialized("{\"a\":" + std::to_string(i) +
                             ",\"s\":\"v" + std::to_string(i % 3) + "\"}");
    }
    return chunk;
  }
};

TEST(PartialLoaderTest, SplitsExactlyByUnionOfBits) {
  LoaderFixture fx;
  PartialLoader loader(fx.schema, 2);
  json::JsonChunk chunk = fx.Chunk(10);

  BitVectorSet annotations(2, 10);
  // Predicate 0 matches rows 1,3 ; predicate 1 matches rows 3,7.
  annotations.mutable_vector(0)->Set(1, true);
  annotations.mutable_vector(0)->Set(3, true);
  annotations.mutable_vector(1)->Set(3, true);
  annotations.mutable_vector(1)->Set(7, true);

  ASSERT_TRUE(loader
                  .IngestChunk(chunk, annotations,
                               /*partial_loading_enabled=*/true, &fx.catalog,
                               &fx.stats)
                  .ok());
  EXPECT_EQ(fx.stats.records_in, 10u);
  EXPECT_EQ(fx.stats.records_loaded, 3u);     // rows 1, 3, 7
  EXPECT_EQ(fx.stats.records_sidelined, 7u);
  EXPECT_NEAR(fx.stats.LoadingRatio(), 0.3, 1e-12);
  EXPECT_EQ(fx.catalog.loaded_rows(), 3u);
  EXPECT_EQ(fx.catalog.raw_rows(), 7u);
  EXPECT_GT(fx.stats.parse_seconds, 0.0);

  // The loaded segment's annotations are compacted to the loaded rows,
  // preserving per-predicate bits: rows [1,3,7] -> p0=[1,1,0], p1=[0,1,1].
  auto reader =
      columnar::TableReader::OpenBorrowed(fx.catalog.segment(0).file_bytes);
  ASSERT_TRUE(reader.ok());
  auto meta = reader->ReadMeta(0);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_rows, 3u);
  EXPECT_TRUE(meta->annotations.vector(0).Get(0));
  EXPECT_TRUE(meta->annotations.vector(0).Get(1));
  EXPECT_FALSE(meta->annotations.vector(0).Get(2));
  EXPECT_FALSE(meta->annotations.vector(1).Get(0));
  EXPECT_TRUE(meta->annotations.vector(1).Get(1));
  EXPECT_TRUE(meta->annotations.vector(1).Get(2));

  // Sidelined rows are exactly the all-zero rows, in order.
  EXPECT_EQ(fx.catalog.raw().Record(0), chunk.Record(0));
  EXPECT_EQ(fx.catalog.raw().Record(1), chunk.Record(2));

  // Loaded column data matches the original records.
  auto batch = reader->ReadBatch(0);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->column(0).GetInt64(0), 1);
  EXPECT_EQ(batch->column(0).GetInt64(1), 3);
  EXPECT_EQ(batch->column(0).GetInt64(2), 7);
}

TEST(PartialLoaderTest, DisabledPartialLoadingLoadsEverything) {
  LoaderFixture fx;
  PartialLoader loader(fx.schema, 1);
  BitVectorSet annotations(1, 10);  // all zeros
  ASSERT_TRUE(loader
                  .IngestChunk(fx.Chunk(10), annotations,
                               /*partial_loading_enabled=*/false, &fx.catalog,
                               &fx.stats)
                  .ok());
  EXPECT_EQ(fx.stats.records_loaded, 10u);
  EXPECT_EQ(fx.stats.records_sidelined, 0u);
  EXPECT_EQ(fx.catalog.raw_rows(), 0u);
  // Annotations still stored for data skipping.
  auto reader =
      columnar::TableReader::OpenBorrowed(fx.catalog.segment(0).file_bytes);
  EXPECT_EQ(reader->ReadMeta(0)->annotations.num_predicates(), 1u);
}

TEST(PartialLoaderTest, BaselineZeroPredicatesLoadsEverything) {
  LoaderFixture fx;
  PartialLoader loader(fx.schema, 0);
  ASSERT_TRUE(loader
                  .IngestChunk(fx.Chunk(5), BitVectorSet(),
                               /*partial_loading_enabled=*/true, &fx.catalog,
                               &fx.stats)
                  .ok());
  EXPECT_EQ(fx.stats.records_loaded, 5u);
  EXPECT_EQ(fx.catalog.raw_rows(), 0u);
}

TEST(PartialLoaderTest, MalformedRecordSkippedNotFatal) {
  LoaderFixture fx;
  PartialLoader loader(fx.schema, 1);
  json::JsonChunk chunk;
  chunk.AppendSerialized(R"({"a":1,"s":"x"})");
  chunk.AppendSerialized("{definitely broken");
  chunk.AppendSerialized(R"({"a":3,"s":"y"})");
  BitVectorSet annotations(1, 3);
  for (size_t i = 0; i < 3; ++i) annotations.mutable_vector(0)->Set(i, true);

  ASSERT_TRUE(loader
                  .IngestChunk(chunk, annotations, true, &fx.catalog,
                               &fx.stats)
                  .ok());
  EXPECT_EQ(fx.stats.parse_errors, 1u);
  EXPECT_EQ(fx.stats.records_loaded, 2u);
  // The loaded group's annotations stay aligned (2 rows).
  auto reader =
      columnar::TableReader::OpenBorrowed(fx.catalog.segment(0).file_bytes);
  EXPECT_EQ(reader->ReadMeta(0)->num_rows, 2u);
}

TEST(PartialLoaderTest, AnnotationMismatchRejected) {
  LoaderFixture fx;
  PartialLoader loader(fx.schema, 2);
  EXPECT_TRUE(loader
                  .IngestChunk(fx.Chunk(4), BitVectorSet(1, 4), true,
                               &fx.catalog, &fx.stats)
                  .IsInvalidArgument());
  EXPECT_TRUE(loader
                  .IngestChunk(fx.Chunk(4), BitVectorSet(2, 5), true,
                               &fx.catalog, &fx.stats)
                  .IsInvalidArgument());
}

TEST(PartialLoaderTest, IngestMessageCompletesMissingPredicates) {
  // Registry: p0 = (s = "v1"), p1 = (s = "v2"). The chunk's client only
  // evaluated p0; a completion-enabled loader evaluates p1 itself, so
  // the load decision uses exact bits for both — the all-ones fallback
  // would have loaded every record.
  LoaderFixture fx;
  PredicateRegistry registry;
  ASSERT_TRUE(
      registry.Register(Clause::Of(SimplePredicate::Exact("s", "v1")), 0.33, 1.0)
          .ok());
  ASSERT_TRUE(
      registry.Register(Clause::Of(SimplePredicate::Exact("s", "v2")), 0.33, 1.0)
          .ok());

  ChunkMessage msg;
  msg.chunk = fx.Chunk(9);  // s cycles v0,v1,v2 -> p0: rows 1,4,7; p1: 2,5,8
  msg.total_predicates = 2;
  msg.predicate_ids = {0};
  msg.annotations = BitVectorSet(1, 9);
  for (const size_t row : {1, 4, 7}) {
    msg.annotations.mutable_vector(0)->Set(row, true);
  }

  PartialLoader completing(fx.schema, registry, /*annotation_epoch=*/0,
                           /*server_completion=*/true);
  ASSERT_TRUE(completing
                  .IngestMessage(msg, /*partial_loading_enabled=*/true,
                                 &fx.catalog, &fx.stats)
                  .ok());
  EXPECT_EQ(fx.stats.records_loaded, 6u);  // rows 1,2,4,5,7,8
  EXPECT_EQ(fx.stats.records_sidelined, 3u);
  EXPECT_EQ(fx.stats.predicates_completed, 1u);
  EXPECT_GE(fx.stats.completion_seconds, 0.0);

  // Same message through a completion-disabled loader: p1 is all-ones
  // ("maybe"), so everything loads — sound but imprecise.
  LoaderFixture conservative;
  PartialLoader plain(conservative.schema, registry, /*annotation_epoch=*/0,
                      /*server_completion=*/false);
  ASSERT_TRUE(plain
                  .IngestMessage(msg, /*partial_loading_enabled=*/true,
                                 &conservative.catalog, &conservative.stats)
                  .ok());
  EXPECT_EQ(conservative.stats.records_loaded, 9u);
  EXPECT_EQ(conservative.stats.predicates_completed, 0u);
}

// ---------- JIT loader ----------

TEST(JitLoaderTest, ForEachRawRecordParsesAndCounts) {
  RawStore store;
  store.Append(R"({"a":1,"s":"x"})");
  store.Append("{bad json");
  store.Append(R"({"a":2,"s":"y"})");

  JitStats stats;
  int64_t sum = 0;
  ASSERT_TRUE(ForEachRawRecord(
                  store,
                  [&](const json::Value& v) { sum += v.Find("a")->as_int(); },
                  &stats)
                  .ok());
  EXPECT_EQ(stats.records_parsed, 2u);
  EXPECT_EQ(stats.parse_errors, 1u);
  EXPECT_EQ(sum, 3);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(JitLoaderTest, PromoteRawToColumnar) {
  LoaderFixture fx;
  PartialLoader loader(fx.schema, 1);
  BitVectorSet annotations(1, 6);
  annotations.mutable_vector(0)->Set(0, true);  // only row 0 loaded
  ASSERT_TRUE(loader
                  .IngestChunk(fx.Chunk(6), annotations, true, &fx.catalog,
                               &fx.stats)
                  .ok());
  ASSERT_EQ(fx.catalog.raw_rows(), 5u);
  const uint64_t loaded_before = fx.catalog.loaded_rows();

  JitStats jit;
  ASSERT_TRUE(PromoteRawToColumnar(&fx.catalog, 1, &jit).ok());
  EXPECT_EQ(fx.catalog.raw_rows(), 0u);
  EXPECT_EQ(fx.catalog.loaded_rows(), loaded_before + 5);
  EXPECT_EQ(jit.records_parsed, 5u);

  // Promoted rows carry all-zero annotations (skipping stays sound).
  const size_t last = fx.catalog.num_segments() - 1;
  auto reader =
      columnar::TableReader::OpenBorrowed(fx.catalog.segment(last).file_bytes);
  auto meta = reader->ReadMeta(0);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->annotations.num_predicates(), 1u);
  EXPECT_FALSE(meta->annotations.vector(0).Any());

  // Promoting an empty raw store is a no-op.
  ASSERT_TRUE(PromoteRawToColumnar(&fx.catalog, 1, &jit).ok());
}

// ---------- Catalog ----------

TEST(CatalogTest, CountersAndRatio) {
  columnar::Schema schema({{"a", columnar::ColumnType::kInt64}});
  TableCatalog catalog(schema);
  EXPECT_EQ(catalog.LoadingRatio(), 1.0);
  catalog.AddSegment("fake-bytes", 10);
  catalog.mutable_raw()->Append("{}");
  catalog.mutable_raw()->Append("{}");
  EXPECT_EQ(catalog.loaded_rows(), 10u);
  EXPECT_EQ(catalog.raw_rows(), 2u);
  EXPECT_NEAR(catalog.LoadingRatio(), 10.0 / 12.0, 1e-12);
  EXPECT_EQ(catalog.columnar_bytes(), 10u);
}

}  // namespace
}  // namespace ciao
