// The adaptive re-optimization runtime: epoch-versioned plans, the
// drift-triggered ReplanController, incremental annotation backfill, and
// query-driven JIT promotion. The load-bearing assertions:
//
//  * a workload shift triggers a re-plan that installs a new epoch with a
//    different selected clause set,
//  * every count after the re-plan equals a cold full reload's (and brute
//    force), with and without concurrent queries (run under TSan in CI),
//  * backfilled annotations carry no false negatives w.r.t. exact typed
//    evaluation, and rebuilt segments match it exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "columnar/file_reader.h"
#include "core/plan_epoch.h"
#include "core/replan.h"
#include "core/system.h"
#include "engine/typed_eval.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "storage/backfill.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace ciao {
namespace {

uint64_t BruteForceCount(const std::vector<std::string>& records,
                         const Query& q) {
  uint64_t count = 0;
  for (const std::string& r : records) {
    auto v = json::Parse(r);
    if (v.ok() && EvaluateQuery(q, *v)) ++count;
  }
  return count;
}

/// Single-clause queries over pool[first..first+n).
Workload SliceWorkload(const std::vector<Clause>& pool, size_t first,
                       size_t n, const std::string& prefix) {
  Workload wl;
  for (size_t i = 0; i < n; ++i) {
    Query q;
    q.name = prefix + std::to_string(i);
    q.clauses = {pool[first + i]};
    wl.queries.push_back(std::move(q));
  }
  return wl;
}

CiaoConfig AdaptiveConfig() {
  CiaoConfig config;
  config.budget_us = 50.0;  // room to push several predicates
  config.chunk_size = 64;
  config.sample_size = 300;
  config.adaptive.enabled = true;
  config.adaptive.replan_interval = 6;
  config.adaptive.min_queries = 6;
  config.adaptive.divergence_threshold = 0.3;
  config.adaptive.history_half_life = 8;  // forget the planned mix fast
  config.adaptive.recalibrate = true;
  return config;
}

// ---------- EpochManager ----------

TEST(EpochManagerTest, InstallRequiresStrictlyIncreasingIds) {
  PlanningOutcome outcome;
  auto e0 = PlanEpoch::Make(0, std::move(outcome));
  EpochManager epochs(e0);
  EXPECT_EQ(epochs.current_id(), 0u);

  PlanningOutcome o1;
  EXPECT_TRUE(epochs.Install(PlanEpoch::Make(1, std::move(o1))));
  EXPECT_EQ(epochs.current_id(), 1u);

  // Same id and lower id are rejected (a stale re-planner must not roll
  // the plan back); null is rejected.
  PlanningOutcome o2;
  EXPECT_FALSE(epochs.Install(PlanEpoch::Make(1, std::move(o2))));
  PlanningOutcome o3;
  EXPECT_FALSE(epochs.Install(PlanEpoch::Make(0, std::move(o3))));
  EXPECT_FALSE(epochs.Install(nullptr));
  EXPECT_EQ(epochs.current_id(), 1u);
}

// ---------- Backfill ----------

/// Asserts the catalog's annotations against exact typed evaluation:
/// rebuilt segments must match exactly; promoted ones (client-filter
/// bits) must at least have no false negatives.
void CheckAnnotationsAgainstTypedEval(const TableCatalog& catalog,
                                      const PredicateRegistry& registry,
                                      uint64_t expected_epoch,
                                      bool require_exact) {
  for (const SegmentRef& segment : catalog.SnapshotSegments()) {
    EXPECT_EQ(segment->annotation_epoch, expected_epoch);
    auto reader = columnar::TableReader::OpenBorrowed(segment->file_bytes);
    ASSERT_TRUE(reader.ok());
    for (size_t g = 0; g < reader->num_row_groups(); ++g) {
      auto meta = reader->ReadMeta(g);
      ASSERT_TRUE(meta.ok());
      ASSERT_EQ(meta->annotations.num_predicates(), registry.size());
      auto batch = reader->ReadBatch(g);
      ASSERT_TRUE(batch.ok());
      for (size_t p = 0; p < registry.size(); ++p) {
        Query probe;
        probe.clauses = {registry.Get(static_cast<uint32_t>(p)).clause};
        auto compiled = CompiledTypedQuery::Compile(probe, catalog.schema());
        ASSERT_TRUE(compiled.ok());
        for (size_t r = 0; r < meta->num_rows; ++r) {
          const bool truth = compiled->Matches(*batch, r);
          const bool bit = meta->annotations.vector(p).Get(r);
          if (truth) {
            EXPECT_TRUE(bit) << "FALSE NEGATIVE in backfilled annotations: "
                             << probe.ToSql() << " row " << r;
          }
          if (require_exact) {
            EXPECT_EQ(bit, truth)
                << "rebuilt segment bits must be exact: " << probe.ToSql()
                << " row " << r;
          }
        }
      }
    }
  }
}

TEST(BackfillTest, RebuildsSegmentsAndPromotesMatchingSideline) {
  const workload::Dataset ds = workload::GenerateWinLog({500, 77});
  const auto pool = workload::MicroTierPredicates(0.15);

  // Ingest under a registry pushing pool[0..1] with partial loading.
  PredicateRegistry old_registry;
  ASSERT_TRUE(old_registry.Register(pool[0], 0.15, 0.5).ok());
  ASSERT_TRUE(old_registry.Register(pool[1], 0.15, 0.5).ok());
  TableCatalog catalog(ds.schema);
  {
    PartialLoader loader(ds.schema, old_registry.size(), /*epoch=*/0);
    ClientFilter filter(&old_registry);
    LoadStats ls;
    PrefilterStats ps;
    for (size_t start = 0; start < ds.records.size(); start += 100) {
      const size_t end = std::min(start + 100, ds.records.size());
      json::JsonChunk chunk;
      for (size_t i = start; i < end; ++i) {
        chunk.AppendSerialized(ds.records[i]);
      }
      ASSERT_TRUE(loader
                      .IngestChunk(chunk, filter.Evaluate(chunk, &ps), true,
                                   &catalog, &ls)
                      .ok());
    }
  }
  const uint64_t sideline_before = catalog.raw_rows();
  ASSERT_GT(sideline_before, 0u);
  const uint64_t segments_before = catalog.num_segments();

  // New epoch pushes pool[2..3] — predicates the old epoch never saw.
  PredicateRegistry new_registry;
  ASSERT_TRUE(new_registry.Register(pool[2], 0.15, 0.5).ok());
  ASSERT_TRUE(new_registry.Register(pool[3], 0.15, 0.5).ok());

  BackfillStats stats;
  ASSERT_TRUE(
      BackfillEpochAnnotations(&catalog, new_registry, /*epoch=*/1, &stats)
          .ok());
  EXPECT_EQ(stats.segments_rebuilt, segments_before);
  EXPECT_GT(stats.rows_reannotated, 0u);
  // ~15% selectivity per new predicate: some sidelined records match and
  // must have been promoted, the rest stay raw.
  EXPECT_GT(stats.raw_promoted, 0u);
  EXPECT_GT(stats.raw_kept, 0u);
  EXPECT_EQ(stats.raw_promoted + stats.raw_kept, sideline_before);
  EXPECT_EQ(catalog.raw_rows(), stats.raw_kept);

  // No sideline record may match a new predicate any more (the planner
  // invariant backfill restores for the new epoch).
  const auto raw = catalog.SnapshotRaw();
  for (size_t i = 0; i < raw->size(); ++i) {
    auto v = json::Parse(raw->Record(i));
    ASSERT_TRUE(v.ok());
    for (size_t p = 0; p < new_registry.size(); ++p) {
      EXPECT_FALSE(EvaluateClause(
          new_registry.Get(static_cast<uint32_t>(p)).clause, *v));
    }
  }

  // Rebuilt segments: exact bits. The promoted segment: no false
  // negatives (client-filter bits may over-approximate). Distinguish by
  // running the exact check only on the first `segments_before` rebuilt
  // ones — simpler: require no-false-negatives everywhere, exactness on
  // none (the skipping-count equivalence below pins correctness anyway).
  CheckAnnotationsAgainstTypedEval(catalog, new_registry, /*epoch=*/1,
                                   /*require_exact=*/false);

  // Counts under the new epoch equal brute force, via skipping scans.
  QueryExecutor executor(&catalog, &new_registry);
  for (size_t p = 0; p < new_registry.size(); ++p) {
    Query q;
    q.clauses = {new_registry.Get(static_cast<uint32_t>(p)).clause};
    auto result =
        executor.Execute(q, EpochView{&new_registry, /*epoch_id=*/1});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, BruteForceCount(ds.records, q)) << q.ToSql();
  }
}

TEST(BackfillTest, StaleAnnotationsAreNeverTrusted) {
  // A segment written under epoch 0 must not satisfy a skipping scan
  // planned against epoch 1 via its (wrong id-space) bits: the executor
  // falls back to verifying every row of that segment.
  const workload::Dataset ds = workload::GenerateWinLog({200, 33});
  const auto pool = workload::MicroTierPredicates(0.15);

  PredicateRegistry registry_a;  // epoch 0 pushes pool[0]
  ASSERT_TRUE(registry_a.Register(pool[0], 0.15, 0.5).ok());
  PredicateRegistry registry_b;  // epoch 1 pushes pool[1]
  ASSERT_TRUE(registry_b.Register(pool[1], 0.15, 0.5).ok());

  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, registry_a.size(), /*epoch=*/0);
  ClientFilter filter(&registry_a);
  LoadStats ls;
  PrefilterStats ps;
  json::JsonChunk chunk;
  for (const std::string& r : ds.records) chunk.AppendSerialized(r);
  // Load EVERYTHING (partial loading off) so the sideline plays no role:
  // this isolates the stale-bits question.
  ASSERT_TRUE(loader
                  .IngestChunk(chunk, filter.Evaluate(chunk, &ps), false,
                               &catalog, &ls)
                  .ok());

  Query q;
  q.clauses = {pool[1]};
  QueryExecutor executor(&catalog, &registry_b);
  // Epoch-1 view over epoch-0 segments: bits ignored, rows verified.
  auto result = executor.Execute(q, EpochView{&registry_b, /*epoch_id=*/1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
  EXPECT_GT(result->stats.groups_stale_annotations, 0u);
  EXPECT_EQ(result->count, BruteForceCount(ds.records, q));

  // Same view with a matching epoch id would (wrongly) trust the bits —
  // epoch id 0 here means "the registry that wrote these bits", which
  // for registry_b it is not. The executor cannot detect that lie; the
  // epoch discipline (ids handed out by EpochManager) is what prevents
  // it. This assertion documents the contract boundary.
  auto trusted = executor.Execute(q, EpochView{&registry_b, /*epoch_id=*/0});
  ASSERT_TRUE(trusted.ok());
  EXPECT_EQ(trusted->stats.groups_stale_annotations, 0u);
}

// ---------- End-to-end drift ----------

TEST(AdaptiveDriftTest, ReplanInstallsNewEpochAndKeepsResultsExact) {
  const workload::Dataset ds = workload::GenerateWinLog({600, 19});
  const auto pool = workload::MicroTierPredicates(0.15);

  // Planned for workload A (pool[0..2]); live traffic is workload B
  // (pool[4..6]) — disjoint clause sets, maximal drift.
  const Workload workload_a = SliceWorkload(pool, 0, 3, "a");
  const Workload workload_b = SliceWorkload(pool, 4, 3, "b");

  CiaoConfig config = AdaptiveConfig();
  auto system = CiaoSystem::Bootstrap(ds.schema, workload_a, ds.records,
                                      config, CostModel::Default());
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());
  ASSERT_GT((*system)->catalog().raw_rows(), 0u)
      << "partial loading should sideline records under workload A";

  const auto old_keys = (*system)->epoch()->plan().SelectedKeys();
  ASSERT_FALSE(old_keys.empty());

  // Issue workload-B queries until a re-plan installs (bounded rounds).
  bool replanned = false;
  for (int round = 0; round < 20 && !replanned; ++round) {
    for (const Query& q : workload_b.queries) {
      auto result = (*system)->ExecuteQuery(q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->count, BruteForceCount(ds.records, q)) << q.ToSql();
    }
    replanned = (*system)->replans_installed() > 0;
  }
  ASSERT_TRUE(replanned) << "drift never triggered a re-plan";

  const auto epoch = (*system)->epoch();
  EXPECT_GE(epoch->id, 1u);
  const auto new_keys = epoch->plan().SelectedKeys();
  EXPECT_NE(new_keys, old_keys)
      << "the re-plan should select workload B's clauses";
  // The new epoch serves B with skipping scans.
  for (const Query& q : workload_b.queries) {
    auto result = (*system)->ExecuteQuery(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan) << q.ToSql();
    EXPECT_EQ(result->count, BruteForceCount(ds.records, q)) << q.ToSql();
  }
  // Old workload A queries stay correct (possibly via full scans now).
  for (const Query& q : workload_a.queries) {
    auto result = (*system)->ExecuteQuery(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, BruteForceCount(ds.records, q)) << q.ToSql();
  }

  // Results identical to a cold full reload: a fresh static system
  // bootstrapped for workload B over the same records.
  CiaoConfig cold_config;
  cold_config.budget_us = config.budget_us;
  cold_config.chunk_size = config.chunk_size;
  cold_config.sample_size = config.sample_size;
  auto cold = CiaoSystem::Bootstrap(ds.schema, workload_b, ds.records,
                                    cold_config, CostModel::Default());
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*cold)->IngestRecords(ds.records).ok());
  for (const Query& q : workload_b.queries) {
    auto adaptive_result = (*system)->ExecuteQuery(q);
    auto cold_result = (*cold)->ExecuteQuery(q);
    ASSERT_TRUE(adaptive_result.ok());
    ASSERT_TRUE(cold_result.ok());
    EXPECT_EQ(adaptive_result->count, cold_result->count) << q.ToSql();
  }

  // Backfilled annotations: no false negatives vs exact typed eval, and
  // every segment re-tagged with the installed epoch. Snapshot afresh —
  // the A+B query mix above may have triggered a further re-plan.
  const auto final_epoch = (*system)->epoch();
  CheckAnnotationsAgainstTypedEval((*system)->catalog(),
                                   final_epoch->registry(), final_epoch->id,
                                   /*require_exact=*/false);

  const EndToEndReport report = (*system)->BuildReport("drift");
  EXPECT_EQ(report.plan_epoch, final_epoch->id);
  EXPECT_GE(report.replans_installed, 1u);
}

TEST(AdaptiveDriftTest, ConcurrentQueriesDuringReplanStayConsistent) {
  // Several threads hammer workload-B queries while the drift trigger
  // re-plans inline on one of them: every observed count must be exact,
  // before, during, and after the epoch flip. Run under TSan in CI.
  const workload::Dataset ds = workload::GenerateWinLog({300, 55});
  const auto pool = workload::MicroTierPredicates(0.15);
  const Workload workload_a = SliceWorkload(pool, 0, 2, "a");
  const Workload workload_b = SliceWorkload(pool, 4, 2, "b");

  CiaoConfig config = AdaptiveConfig();
  config.adaptive.replan_interval = 8;
  config.adaptive.min_queries = 8;
  auto system = CiaoSystem::Bootstrap(ds.schema, workload_a, ds.records,
                                      config, CostModel::Default());
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());

  std::vector<uint64_t> expected;
  for (const Query& q : workload_b.queries) {
    expected.push_back(BruteForceCount(ds.records, q));
  }

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 30;
  std::atomic<int> wrong_counts{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t qi = (static_cast<size_t>(t) + i) % workload_b.queries.size();
        auto result = (*system)->ExecuteQuery(workload_b.queries[qi]);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (result->count != expected[qi]) {
          wrong_counts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_counts.load(), 0);
  EXPECT_GE((*system)->replans_installed(), 1u)
      << "the drifted load should have re-planned at least once";

  // And the system still answers exactly afterwards.
  for (size_t i = 0; i < workload_b.queries.size(); ++i) {
    auto result = (*system)->ExecuteQuery(workload_b.queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected[i]);
  }
}

TEST(AdaptiveDefaultsTest, DisabledAdaptiveKeepsLegacyBehaviour) {
  // adaptive.enabled=false (default): no controller, epoch pinned at 0,
  // no promotions, reports identical in shape to the legacy pipeline.
  const workload::Dataset ds = workload::GenerateWinLog({200, 13});
  const auto pool = workload::MicroTierPredicates(0.15);
  const Workload wl = SliceWorkload(pool, 0, 2, "q");

  CiaoConfig config;
  config.budget_us = 10.0;
  config.sample_size = 200;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());
  EXPECT_EQ((*system)->replan_controller(), nullptr);

  for (int round = 0; round < 30; ++round) {
    for (const Query& q : wl.queries) {
      auto result = (*system)->ExecuteQuery(q);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->count, BruteForceCount(ds.records, q));
    }
  }
  EXPECT_EQ((*system)->replans_installed(), 0u);
  EXPECT_EQ((*system)->epoch()->id, 0u);
  const EndToEndReport report = (*system)->BuildReport("legacy");
  EXPECT_EQ(report.plan_epoch, 0u);
  EXPECT_EQ(report.replans_installed, 0u);
}

// ---------- Predicate-clustered segment re-layout ----------

TEST(RelayoutTest, ForceRelayoutClustersRowsAndKeepsResultsExact) {
  const workload::Dataset ds = workload::GenerateWinLog({600, 91});
  const auto pool = workload::MicroTierPredicates(0.15);
  const Workload wl = SliceWorkload(pool, 0, 3, "q");

  CiaoConfig config = AdaptiveConfig();
  config.adaptive.relayout.enabled = true;
  config.adaptive.relayout.rows_per_group = 64;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());

  std::vector<uint64_t> expected;
  std::vector<ScanStats> before;
  for (const Query& q : wl.queries) {
    expected.push_back(BruteForceCount(ds.records, q));
    auto result = (*system)->ExecuteQuery(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected.back()) << q.ToSql();
    before.push_back(result->stats);
  }
  const uint64_t loaded_before = (*system)->catalog().loaded_rows();

  ReplanController* controller = (*system)->replan_controller();
  ASSERT_NE(controller, nullptr);
  auto relaid = controller->ForceRelayout();
  ASSERT_TRUE(relaid.ok()) << relaid.status().ToString();
  ASSERT_TRUE(*relaid);
  EXPECT_EQ((*system)->relayouts_performed(), 1u);
  const RelayoutStats stats = controller->relayout_stats();
  EXPECT_GT(stats.segments_read, 0u);
  EXPECT_GT(stats.segments_written, 0u);
  EXPECT_GT(stats.rows_moved, 0u);
  // The rewrite moves rows between files but must conserve them.
  EXPECT_EQ((*system)->catalog().loaded_rows(), loaded_before);
  // Spent time is charged to the regret ledger even on a forced pass.
  EXPECT_GT(controller->relayout_spent_seconds(), 0.0);

  // Counts stay exact and the clustered layout decodes no more rows than
  // the ingest-order layout did. The hottest predicate's matches become
  // one contiguous prefix, so at minimum that query must skip whole
  // groups; colder predicates may still straddle every group at this
  // tiny scale, so skipping is asserted in aggregate.
  uint64_t skipped_after = 0;
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    auto result = (*system)->ExecuteQuery(wl.queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan, PlanKind::kSkippingScan);
    EXPECT_EQ(result->count, expected[i]) << wl.queries[i].ToSql();
    EXPECT_LE(result->stats.rows_decoded, before[i].rows_decoded);
    skipped_after +=
        result->stats.groups_skipped + result->stats.groups_skipped_zonemap;
  }
  EXPECT_GT(skipped_after, 0u)
      << "clustering should leave whole groups skippable";

  // The rewrite re-annotates from typed evaluation, so the published
  // bits must match the oracle exactly (not just superset-soundly).
  const auto epoch = (*system)->epoch();
  CheckAnnotationsAgainstTypedEval((*system)->catalog(), epoch->registry(),
                                   epoch->id, /*require_exact=*/true);
  for (const SegmentRef& segment : (*system)->catalog().SnapshotSegments()) {
    EXPECT_TRUE(segment->annotations_exact);
  }

  // Idempotence: a second pass re-clusters already-clustered rows and
  // results stay exact.
  auto again = controller->ForceRelayout();
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    auto result = (*system)->ExecuteQuery(wl.queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected[i]);
  }
}

TEST(AdaptiveDriftTest, ConcurrentQueriesDuringRelayoutStayConsistent) {
  // The re-layout differential: several threads hammer queries while
  // another repeatedly re-clusters the catalog underneath them. Every
  // observed count must be identical before, during, and after each
  // reorganization. Run under TSan in CI.
  const workload::Dataset ds = workload::GenerateWinLog({300, 71});
  const auto pool = workload::MicroTierPredicates(0.15);
  const Workload wl = SliceWorkload(pool, 0, 2, "q");

  CiaoConfig config = AdaptiveConfig();
  config.adaptive.relayout.enabled = true;
  config.adaptive.relayout.rows_per_group = 64;
  // Keep organic re-plans out of this test: an epoch swap mid-run can
  // legitimately shrink the pushed predicate set, after which re-layout
  // (correctly) has nothing to cluster and every forced pass no-ops.
  // Replan/relayout interleaving rides the same single-flight lock and
  // is exercised by the drift tests above.
  config.adaptive.replan_interval = 1u << 20;
  config.adaptive.min_queries = 1u << 20;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->IngestRecords(ds.records).ok());

  std::vector<uint64_t> expected;
  for (const Query& q : wl.queries) {
    expected.push_back(BruteForceCount(ds.records, q));
  }
  ReplanController* controller = (*system)->replan_controller();
  ASSERT_NE(controller, nullptr);
  // Seed the query log so the relayout thread has hot predicates to rank.
  for (const Query& q : wl.queries) {
    ASSERT_TRUE((*system)->ExecuteQuery(q).ok());
  }

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 30;
  constexpr int kRelayouts = 5;
  std::atomic<int> wrong_counts{0};
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t qi = (static_cast<size_t>(t) + i) % wl.queries.size();
        auto result = (*system)->ExecuteQuery(wl.queries[qi]);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (result->count != expected[qi]) {
          wrong_counts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kRelayouts && !done.load(std::memory_order_relaxed);
         ++i) {
      auto relaid = controller->ForceRelayout();
      if (!relaid.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t t = 0; t < threads.size() - 1; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_counts.load(), 0);
  EXPECT_GE((*system)->relayouts_performed(), 1u);

  // And the system still answers exactly afterwards.
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    auto result = (*system)->ExecuteQuery(wl.queries[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, expected[i]);
  }
}

// ---------- Query-driven JIT promotion ----------

TEST(QueryPromotionTest, FullScanPromotesOnlyUnscreenableRecords) {
  const workload::Dataset ds = workload::GenerateWinLog({400, 21});
  const auto pool = workload::MicroTierPredicates(0.15);

  // Push pool[0] so a decent sideline forms; query pool[5] (not pushed)
  // to force the full-scan + promotion path.
  PredicateRegistry registry;
  ASSERT_TRUE(registry.Register(pool[0], 0.15, 0.5).ok());
  TableCatalog catalog(ds.schema);
  {
    PartialLoader loader(ds.schema, registry.size(), /*epoch=*/0);
    ClientFilter filter(&registry);
    LoadStats ls;
    PrefilterStats ps;
    json::JsonChunk chunk;
    for (const std::string& r : ds.records) chunk.AppendSerialized(r);
    ASSERT_TRUE(loader
                    .IngestChunk(chunk, filter.Evaluate(chunk, &ps), true,
                                 &catalog, &ls)
                    .ok());
  }
  const uint64_t sideline_before = catalog.raw_rows();
  ASSERT_GT(sideline_before, 0u);

  Query q;
  q.clauses = {pool[5]};
  const uint64_t expected = BruteForceCount(ds.records, q);

  JitStats jit;
  QueryPromotionStats promotion;
  ASSERT_TRUE(PromoteForQuery(&catalog, q, registry, /*epoch=*/0, &jit,
                              &promotion)
                  .ok());
  // The screen must rule out the bulk of a 15%-selectivity query's
  // sideline; survivors were parsed and promoted.
  EXPECT_GT(promotion.screened_out, 0u);
  EXPECT_GT(promotion.promoted, 0u);
  EXPECT_EQ(promotion.promoted + promotion.screened_out +
                promotion.parse_failures,
            sideline_before);
  EXPECT_EQ(catalog.raw_rows(),
            promotion.screened_out + promotion.parse_failures);
  EXPECT_EQ(jit.records_parsed, promotion.promoted);

  // Counts stay exact; the promoted rows are found in columnar form, the
  // screened-out ones cannot match.
  QueryExecutor executor(&catalog, &registry);
  auto result = executor.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan, PlanKind::kFullScan);
  EXPECT_EQ(result->count, expected);

  // The pushed predicate keeps working via skipping on the promoted
  // segment (its annotations were re-evaluated, not zeroed): a record
  // promoted here that matches pool[0] would otherwise be lost.
  Query pushed;
  pushed.clauses = {pool[0]};
  auto skipping = executor.Execute(pushed);
  ASSERT_TRUE(skipping.ok());
  EXPECT_EQ(skipping->plan, PlanKind::kSkippingScan);
  EXPECT_EQ(skipping->count, BruteForceCount(ds.records, pushed));

  // Idempotence: a second pass finds nothing new to promote.
  QueryPromotionStats again;
  JitStats jit2;
  ASSERT_TRUE(
      PromoteForQuery(&catalog, q, registry, /*epoch=*/0, &jit2, &again).ok());
  EXPECT_EQ(again.promoted, 0u);
}

}  // namespace
}  // namespace ciao
