#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "optimizer/exhaustive.h"
#include "optimizer/greedy.h"
#include "optimizer/objective.h"
#include "optimizer/selection.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/selectivity.h"
#include "workload/templates.h"

namespace ciao {
namespace {

Clause NamedClause(const std::string& field, int64_t v) {
  return Clause::Of(SimplePredicate::KeyValue(field, v));
}

/// Builds a random instance: `n` candidates over `m` queries.
PushdownObjective RandomInstance(Rng* rng, size_t n, size_t m) {
  std::vector<CandidatePredicate> candidates;
  for (size_t i = 0; i < n; ++i) {
    CandidatePredicate c;
    c.clause = NamedClause("f" + std::to_string(i), static_cast<int64_t>(i));
    c.selectivity = 0.05 + rng->NextDouble() * 0.9;
    c.cost_us = 0.1 + rng->NextDouble() * 2.0;
    const size_t memberships = 1 + rng->NextBounded(m);
    std::set<uint32_t> qs;
    while (qs.size() < memberships) {
      qs.insert(static_cast<uint32_t>(rng->NextBounded(m)));
    }
    c.query_ids.assign(qs.begin(), qs.end());
    candidates.push_back(std::move(c));
  }
  std::vector<double> freqs(m, 1.0);
  return PushdownObjective(std::move(candidates), std::move(freqs));
}

// ---------- Objective ----------

TEST(ObjectiveTest, EmptySetIsZero) {
  Rng rng(1);
  PushdownObjective obj = RandomInstance(&rng, 5, 3);
  EXPECT_DOUBLE_EQ(obj.Value({}), 0.0);
  EXPECT_DOUBLE_EQ(obj.CurrentValue(), 0.0);
}

TEST(ObjectiveTest, SinglePredicateValue) {
  // One predicate with selectivity s in one query of frequency f:
  // f(S) = f * (1 - s).
  std::vector<CandidatePredicate> cands(1);
  cands[0].clause = NamedClause("a", 1);
  cands[0].selectivity = 0.3;
  cands[0].cost_us = 1.0;
  cands[0].query_ids = {0};
  PushdownObjective obj(std::move(cands), {2.0});
  EXPECT_DOUBLE_EQ(obj.Value({0}), 2.0 * 0.7);
}

TEST(ObjectiveTest, IndependenceProductWithinQuery) {
  // Two predicates in the same query: f = 1 - s1*s2.
  std::vector<CandidatePredicate> cands(2);
  for (int i = 0; i < 2; ++i) {
    cands[i].clause = NamedClause("a", i);
    cands[i].query_ids = {0};
    cands[i].cost_us = 1.0;
  }
  cands[0].selectivity = 0.5;
  cands[1].selectivity = 0.2;
  PushdownObjective obj(std::move(cands), {1.0});
  EXPECT_DOUBLE_EQ(obj.Value({0, 1}), 1.0 - 0.1);
}

TEST(ObjectiveTest, IncrementalMatchesStateless) {
  Rng rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    PushdownObjective obj = RandomInstance(&rng, 10, 6);
    std::vector<uint32_t> subset;
    for (uint32_t i = 0; i < 10; ++i) {
      if (rng.NextBool(0.4)) subset.push_back(i);
    }
    obj.Reset();
    for (const uint32_t i : subset) {
      const double before = obj.CurrentValue();
      const double gain = obj.MarginalGain(i);
      obj.Add(i);
      EXPECT_NEAR(obj.CurrentValue(), before + gain, 1e-9);
    }
    EXPECT_NEAR(obj.CurrentValue(), obj.Value(subset), 1e-9);
  }
}

// Property: f is submodular and monotone (paper §V-B).
TEST(ObjectiveTest, SubmodularityProperty) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const size_t n = 4 + rng.NextBounded(8);
    PushdownObjective obj = RandomInstance(&rng, n, 5);
    // Random S and T.
    std::vector<uint32_t> s, t, s_and_t, s_or_t;
    for (uint32_t i = 0; i < n; ++i) {
      const bool in_s = rng.NextBool(0.5);
      const bool in_t = rng.NextBool(0.5);
      if (in_s) s.push_back(i);
      if (in_t) t.push_back(i);
      if (in_s && in_t) s_and_t.push_back(i);
      if (in_s || in_t) s_or_t.push_back(i);
    }
    const double lhs = obj.Value(s) + obj.Value(t);
    const double rhs = obj.Value(s_and_t) + obj.Value(s_or_t);
    EXPECT_GE(lhs, rhs - 1e-9);
    // Monotonicity: f(S) <= f(S ∪ T).
    EXPECT_LE(obj.Value(s), obj.Value(s_or_t) + 1e-9);
  }
}

// Property: diminishing marginal returns — gain of adding p to S is >=
// gain of adding p to a superset of S.
TEST(ObjectiveTest, DiminishingReturnsProperty) {
  Rng rng(13);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = 6 + rng.NextBounded(6);
    PushdownObjective obj = RandomInstance(&rng, n, 4);
    const uint32_t p = static_cast<uint32_t>(rng.NextBounded(n));

    obj.Reset();
    std::vector<uint32_t> base;
    for (uint32_t i = 0; i < n; ++i) {
      if (i != p && rng.NextBool(0.3)) {
        obj.Add(i);
        base.push_back(i);
      }
    }
    const double gain_small = obj.MarginalGain(p);

    // Extend to a superset.
    for (uint32_t i = 0; i < n; ++i) {
      if (i != p && !obj.IsSelected(i) && rng.NextBool(0.5)) obj.Add(i);
    }
    const double gain_large = obj.MarginalGain(p);
    EXPECT_LE(gain_large, gain_small + 1e-9);
  }
}

// ---------- Greedy algorithms ----------

TEST(GreedyTest, RespectsBudget) {
  Rng rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    PushdownObjective obj = RandomInstance(&rng, 12, 6);
    GreedyOptions opt;
    opt.budget_us = rng.NextDouble() * 8.0;
    for (auto* fn : {&GreedyByBenefit, &GreedyByRatio, &LazyGreedyByBenefit}) {
      const SelectionResult r = (*fn)(&obj, opt);
      EXPECT_LE(r.total_cost_us, opt.budget_us + 1e-9) << r.algorithm;
      // No duplicates.
      std::set<uint32_t> uniq(r.selected.begin(), r.selected.end());
      EXPECT_EQ(uniq.size(), r.selected.size());
      EXPECT_NEAR(r.objective_value, obj.Value(r.selected), 1e-9);
    }
  }
}

TEST(GreedyTest, ZeroBudgetSelectsNothing) {
  Rng rng(19);
  PushdownObjective obj = RandomInstance(&rng, 8, 4);
  GreedyOptions opt;
  opt.budget_us = 0.0;
  EXPECT_TRUE(GreedyByBenefit(&obj, opt).selected.empty());
  EXPECT_TRUE(GreedyByRatio(&obj, opt).selected.empty());
}

TEST(GreedyTest, HugeBudgetSelectsAllUsefulPredicates) {
  Rng rng(23);
  PushdownObjective obj = RandomInstance(&rng, 8, 4);
  GreedyOptions opt;
  opt.budget_us = 1e9;
  const SelectionResult r = GreedyByBenefit(&obj, opt);
  // All candidates have sel < 1 and belong to >= 1 query, so all gains
  // are positive and everything is picked.
  EXPECT_EQ(r.selected.size(), 8u);
}

TEST(GreedyTest, LazyMatchesPlainGreedy) {
  Rng rng(29);
  for (int iter = 0; iter < 40; ++iter) {
    PushdownObjective obj = RandomInstance(&rng, 14, 7);
    GreedyOptions opt;
    opt.budget_us = 1.0 + rng.NextDouble() * 10.0;
    const SelectionResult plain = GreedyByBenefit(&obj, opt);
    const SelectionResult lazy = LazyGreedyByBenefit(&obj, opt);
    EXPECT_NEAR(plain.objective_value, lazy.objective_value, 1e-9);
    EXPECT_EQ(plain.selected, lazy.selected);
  }
}

TEST(GreedyTest, LazySavesEvaluationsOnSparseInstances) {
  // Lazy evaluation pays off when candidates overlap on few queries (the
  // realistic CIAO shape: each predicate appears in a handful of the 200
  // workload queries): adding one predicate leaves most cached gains
  // exact, so the heap top is usually fresh. Plain greedy re-scores every
  // feasible candidate every round regardless.
  Rng rng(43);
  const size_t n = 300, m = 300;
  std::vector<CandidatePredicate> candidates;
  for (size_t i = 0; i < n; ++i) {
    CandidatePredicate c;
    c.clause = NamedClause("f" + std::to_string(i), static_cast<int64_t>(i));
    c.selectivity = 0.05 + rng.NextDouble() * 0.9;
    c.cost_us = 0.5 + rng.NextDouble();
    // Sparse membership: 1-2 queries per candidate.
    c.query_ids = {static_cast<uint32_t>(rng.NextBounded(m))};
    if (rng.NextBool(0.5)) {
      c.query_ids.push_back(static_cast<uint32_t>(rng.NextBounded(m)));
    }
    candidates.push_back(std::move(c));
  }
  PushdownObjective obj(std::move(candidates), std::vector<double>(m, 1.0));
  GreedyOptions opt;
  opt.budget_us = 40.0;  // admits ~40 selections at mean cost ~1
  const SelectionResult plain = GreedyByBenefit(&obj, opt);
  const SelectionResult lazy = LazyGreedyByBenefit(&obj, opt);
  ASSERT_GT(plain.selected.size(), 20u);
  EXPECT_EQ(plain.selected, lazy.selected);
  EXPECT_LT(lazy.gain_evaluations, plain.gain_evaluations / 4);
}

TEST(GreedyTest, BestOfBothPicksHigherObjective) {
  Rng rng(31);
  for (int iter = 0; iter < 30; ++iter) {
    PushdownObjective obj = RandomInstance(&rng, 10, 5);
    GreedyOptions opt;
    opt.budget_us = 1.0 + rng.NextDouble() * 6.0;
    const double v1 = GreedyByBenefit(&obj, opt).objective_value;
    const double v2 = GreedyByRatio(&obj, opt).objective_value;
    const SelectionResult best = SelectBestOfBoth(&obj, opt);
    EXPECT_NEAR(best.objective_value, std::max(v1, v2), 1e-9);
    EXPECT_EQ(best.algorithm, "best_of_both");
  }
}

// The textbook adversarial case for Algorithm 1: a cheap high-ratio
// predicate vs. an expensive slightly-better one. Benefit-greedy takes
// the expensive one and exhausts the budget; ratio-greedy does better.
TEST(GreedyTest, RatioBeatsBenefitOnAdversarialInstance) {
  std::vector<CandidatePredicate> cands(3);
  // p0: gain 0.51, cost 10 (hogs the whole budget).
  cands[0].clause = NamedClause("a", 0);
  cands[0].selectivity = 0.49;
  cands[0].cost_us = 10.0;
  cands[0].query_ids = {0};
  // p1, p2: gain 0.5 each, cost 5 each (both fit).
  for (int i = 1; i < 3; ++i) {
    cands[i].clause = NamedClause("a", i);
    cands[i].selectivity = 0.5;
    cands[i].cost_us = 5.0;
    cands[i].query_ids = {static_cast<uint32_t>(i)};
  }
  PushdownObjective obj(std::move(cands), {1.0, 1.0, 1.0});
  GreedyOptions opt;
  opt.budget_us = 10.0;
  const double v_benefit = GreedyByBenefit(&obj, opt).objective_value;
  const double v_ratio = GreedyByRatio(&obj, opt).objective_value;
  EXPECT_NEAR(v_benefit, 0.51, 1e-9);
  EXPECT_NEAR(v_ratio, 1.0, 1e-9);
  EXPECT_NEAR(SelectBestOfBoth(&obj, opt).objective_value, 1.0, 1e-9);
}

// ---------- Batched cost shape (base + marginal knapsack) ----------

TEST(GreedyTest, BaseCostChargedExactlyOnce) {
  // Budget 10, shared base 4, marginals 3 each: two candidates fit
  // (4 + 3 + 3 = 10), the third would need 13.
  std::vector<CandidatePredicate> cands(3);
  for (int i = 0; i < 3; ++i) {
    cands[i].clause = NamedClause("a", i);
    cands[i].selectivity = 0.5;
    cands[i].cost_us = 3.0;
    cands[i].query_ids = {static_cast<uint32_t>(i)};
  }
  PushdownObjective obj(std::move(cands), {1.0, 1.0, 1.0});
  GreedyOptions opt;
  opt.budget_us = 10.0;
  opt.base_cost_us = 4.0;
  for (auto* fn : {&GreedyByBenefit, &GreedyByRatio, &LazyGreedyByBenefit}) {
    const SelectionResult r = (*fn)(&obj, opt);
    EXPECT_EQ(r.selected.size(), 2u) << r.algorithm;
    EXPECT_NEAR(r.total_cost_us, 10.0, 1e-9) << r.algorithm;
  }
  auto exact = ExhaustiveOptimal(&obj, opt);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->selected.size(), 2u);
  EXPECT_NEAR(exact->total_cost_us, 10.0, 1e-9);
}

TEST(GreedyTest, BaseCostAboveBudgetSelectsNothing) {
  Rng rng(47);
  PushdownObjective obj = RandomInstance(&rng, 6, 3);
  GreedyOptions opt;
  opt.budget_us = 2.0;
  opt.base_cost_us = 3.0;  // the shared scan alone busts the budget
  for (auto* fn : {&GreedyByBenefit, &GreedyByRatio, &LazyGreedyByBenefit}) {
    const SelectionResult r = (*fn)(&obj, opt);
    EXPECT_TRUE(r.selected.empty()) << r.algorithm;
    EXPECT_DOUBLE_EQ(r.total_cost_us, 0.0) << r.algorithm;
  }
}

// The headline economic change: batching makes per-predicate cost nearly
// free once the shared scan is paid, so the same CPU budget admits a
// superset of the per-pattern selection on the fig5 YCSB workload C.
TEST(SelectPredicatesTest, BatchedAdmitsSupersetOnYcsbWorkloadC) {
  workload::GeneratorOptions gen;
  gen.num_records = 1500;
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kYcsb, gen);
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYcsb).AllCandidates();
  Workload wl = workload::WorkloadC(pool);
  wl.queries.resize(std::min<size_t>(wl.queries.size(), 60));

  auto estimate = workload::EstimateClauseStats(
      ds.records, wl.DistinctClauses(), /*sample_size=*/800, /*seed=*/42);
  ASSERT_TRUE(estimate.ok());

  for (const double budget : {25.0, 50.0}) {
    auto per_pattern = SelectPredicates(
        wl, estimate->clause_stats, CostModel::Default(),
        estimate->mean_record_len, budget, SelectionAlgorithm::kBestOfBoth,
        {}, ClientMatcherMode::kPerPattern);
    auto batched = SelectPredicates(
        wl, estimate->clause_stats, CostModel::Default(),
        estimate->mean_record_len, budget, SelectionAlgorithm::kBestOfBoth,
        {}, ClientMatcherMode::kBatched);
    ASSERT_TRUE(per_pattern.ok());
    ASSERT_TRUE(batched.ok());

    const std::vector<std::string> before = per_pattern->SelectedKeys();
    const std::vector<std::string> after = batched->SelectedKeys();
    EXPECT_GE(after.size(), before.size()) << "budget=" << budget;
    EXPECT_TRUE(std::includes(after.begin(), after.end(), before.begin(),
                              before.end()))
        << "budget=" << budget
        << ": batched selection is not a superset of per-pattern";
    EXPECT_GE(batched->objective_value, per_pattern->objective_value - 1e-9);
    EXPECT_LE(batched->total_cost_us, budget + 1e-9);
    EXPECT_DOUBLE_EQ(per_pattern->base_cost_us, 0.0);
    EXPECT_GT(batched->base_cost_us, 0.0);
  }
}

// ---------- Exhaustive + approximation guarantee ----------

TEST(ExhaustiveTest, FindsOptimumOnSmallInstance) {
  std::vector<CandidatePredicate> cands(3);
  for (int i = 0; i < 3; ++i) {
    cands[i].clause = NamedClause("a", i);
    cands[i].query_ids = {static_cast<uint32_t>(i)};
  }
  cands[0].selectivity = 0.1;
  cands[0].cost_us = 3.0;
  cands[1].selectivity = 0.4;
  cands[1].cost_us = 1.5;
  cands[2].selectivity = 0.5;
  cands[2].cost_us = 1.5;
  PushdownObjective obj(std::move(cands), {1.0, 1.0, 1.0});
  GreedyOptions opt;
  opt.budget_us = 3.0;
  auto r = ExhaustiveOptimal(&obj, opt);
  ASSERT_TRUE(r.ok());
  // Options: {p0}=0.9 ; {p1,p2}=0.6+0.5=1.1 -> optimal is {p1,p2}.
  EXPECT_NEAR(r->objective_value, 1.1, 1e-9);
  EXPECT_EQ(r->selected.size(), 2u);
}

TEST(ExhaustiveTest, RefusesLargeInstances) {
  Rng rng(37);
  PushdownObjective obj = RandomInstance(&rng, 30, 5);
  GreedyOptions opt;
  opt.budget_us = 5.0;
  EXPECT_FALSE(ExhaustiveOptimal(&obj, opt, 22).ok());
}

// Property (paper §V-C, Khuller–Moss–Naor): best-of-both >= 0.316 * OPT.
TEST(ApproximationTest, BestOfBothMeetsGuaranteeOnRandomInstances) {
  Rng rng(41);
  for (int iter = 0; iter < 60; ++iter) {
    const size_t n = 4 + rng.NextBounded(9);  // <= 12 candidates
    PushdownObjective obj = RandomInstance(&rng, n, 5);
    GreedyOptions opt;
    opt.budget_us = 0.5 + rng.NextDouble() * 6.0;
    auto optimal = ExhaustiveOptimal(&obj, opt);
    ASSERT_TRUE(optimal.ok());
    const SelectionResult approx = SelectBestOfBoth(&obj, opt);
    constexpr double kBound = 0.5 * (1.0 - 1.0 / 2.718281828459045);
    EXPECT_GE(approx.objective_value,
              kBound * optimal->objective_value - 1e-9)
        << "n=" << n << " budget=" << opt.budget_us;
  }
}

// ---------- SelectPredicates end-to-end ----------

TEST(SelectPredicatesTest, BuildsCandidatesAndRespectsCoverage) {
  Clause c1 = NamedClause("a", 1);
  Clause c2 = NamedClause("b", 2);
  Clause range = Clause::Of(SimplePredicate::RangeLess("c", 5));
  Workload w;
  w.queries.push_back(Query{{c1, c2}, 1.0, "q0"});
  w.queries.push_back(Query{{c1, range}, 1.0, "q1"});

  std::vector<ClauseStats> stats(3);
  stats[0].selectivity = 0.2;  // c1
  stats[1].selectivity = 0.5;  // c2
  stats[2].selectivity = 0.9;  // range (ignored: unsupported)
  for (auto& s : stats) s.term_selectivities = {s.selectivity};

  auto plan =
      SelectPredicates(w, stats, CostModel::Default(), 100.0, /*budget=*/50.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_candidates, 2u);  // range excluded
  EXPECT_EQ(plan->num_unsupported, 1u);
  EXPECT_EQ(plan->selected.size(), 2u);
  EXPECT_TRUE(plan->covers_all_queries);  // c1 alone covers both queries
  EXPECT_GT(plan->objective_value, 0.0);
  EXPECT_LE(plan->total_cost_us, 50.0);

  auto registry = BuildRegistry(*plan);
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry->size(), 2u);
}

TEST(SelectPredicatesTest, ZeroBudgetYieldsEmptyPlan) {
  Clause c1 = NamedClause("a", 1);
  Workload w;
  w.queries.push_back(Query{{c1}, 1.0, "q0"});
  std::vector<ClauseStats> stats(1);
  stats[0].selectivity = 0.2;
  stats[0].term_selectivities = {0.2};
  auto plan = SelectPredicates(w, stats, CostModel::Default(), 100.0, 0.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->selected.empty());
  EXPECT_FALSE(plan->covers_all_queries);
}

TEST(SelectPredicatesTest, StatsSizeMismatchFails) {
  Workload w;
  w.queries.push_back(Query{{NamedClause("a", 1)}, 1.0, "q0"});
  EXPECT_FALSE(SelectPredicates(w, {}, CostModel::Default(), 100, 1).ok());
}

TEST(SelectPredicatesTest, AlgorithmSelection) {
  Clause c1 = NamedClause("a", 1);
  Clause c2 = NamedClause("b", 2);
  Workload w;
  w.queries.push_back(Query{{c1, c2}, 1.0, "q0"});
  std::vector<ClauseStats> stats(2);
  stats[0] = {0.2, {0.2}};
  stats[1] = {0.5, {0.5}};
  for (const auto algo :
       {SelectionAlgorithm::kBestOfBoth, SelectionAlgorithm::kGreedyBenefit,
        SelectionAlgorithm::kGreedyRatio, SelectionAlgorithm::kLazyGreedy,
        SelectionAlgorithm::kExhaustive}) {
    auto plan = SelectPredicates(w, stats, CostModel::Default(), 100.0, 50.0,
                                 algo);
    ASSERT_TRUE(plan.ok()) << SelectionAlgorithmName(algo);
    EXPECT_EQ(plan->selected.size(), 2u) << SelectionAlgorithmName(algo);
  }
}

}  // namespace
}  // namespace ciao
