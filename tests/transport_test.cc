// Wire-format and transport-concurrency tests: ChunkMessage round-trips
// and malformed-input rejection, plus the BoundedTransport MPMC queue
// (backpressure, close/drain protocol, many producers x many consumers).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "storage/transport.h"

namespace ciao {
namespace {

json::JsonChunk MakeChunk(const std::vector<std::string>& records) {
  json::JsonChunk chunk;
  for (const auto& r : records) chunk.AppendSerialized(r);
  return chunk;
}

ChunkMessage MakeMessage() {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})", R"({"a":2})", R"({"a":3})"});
  msg.predicate_ids = {1, 4};
  msg.annotations = BitVectorSet(2, 3);
  msg.annotations.mutable_vector(0)->Set(0, true);
  msg.annotations.mutable_vector(1)->Set(2, true);
  return msg;
}

// ---------- ChunkMessage wire format ----------

TEST(ChunkMessageRoundTripTest, FullRoundTrip) {
  const ChunkMessage msg = MakeMessage();
  std::string payload;
  msg.SerializeTo(&payload);

  auto decoded = ChunkMessage::Deserialize(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->chunk.size(), 3u);
  EXPECT_EQ(decoded->chunk.Record(0), R"({"a":1})");
  EXPECT_EQ(decoded->chunk.Record(2), R"({"a":3})");
  EXPECT_EQ(decoded->predicate_ids, msg.predicate_ids);
  EXPECT_TRUE(decoded->annotations == msg.annotations);
}

TEST(ChunkMessageRoundTripTest, EmptyIdsRoundTrip) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"x":true})"});
  std::string payload;
  msg.SerializeTo(&payload);
  auto decoded = ChunkMessage::Deserialize(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->predicate_ids.empty());
  EXPECT_EQ(decoded->annotations.num_predicates(), 0u);
  EXPECT_EQ(decoded->chunk.size(), 1u);
}

TEST(ChunkMessageRoundTripTest, SerializeAppendsAfterExistingBytes) {
  // SerializeTo appends; a framing layer may have written a prefix.
  const ChunkMessage msg = MakeMessage();
  std::string payload = "prefix";
  msg.SerializeTo(&payload);
  ASSERT_EQ(payload.substr(0, 6), "prefix");
  auto decoded = ChunkMessage::Deserialize(
      std::string_view(payload).substr(6));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->chunk.size(), 3u);
}

TEST(ChunkMessageMalformedTest, TruncatedAtEveryPrefixRejectedOrShorter) {
  // No prefix strictly shorter than the full message may decode to the
  // original content; most must be rejected as corruption.
  const ChunkMessage msg = MakeMessage();
  std::string payload;
  msg.SerializeTo(&payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = ChunkMessage::Deserialize(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(ChunkMessageMalformedTest, BadMagicRejected) {
  const ChunkMessage msg = MakeMessage();
  std::string payload;
  msg.SerializeTo(&payload);
  payload[0] = 'X';
  EXPECT_TRUE(ChunkMessage::Deserialize(payload).status().IsCorruption());
  EXPECT_TRUE(ChunkMessage::Deserialize("").status().IsCorruption());
  EXPECT_TRUE(ChunkMessage::Deserialize("CMS").status().IsCorruption());
}

TEST(ChunkMessageMalformedTest, TruncatedHeaderRejected) {
  // Magic plus a partial id-count word.
  EXPECT_TRUE(
      ChunkMessage::Deserialize(std::string("CMSG\x02\x00", 6))
          .status()
          .IsCorruption());
}

TEST(ChunkMessageMalformedTest, OversizedNdjsonLengthRejected) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})"});
  std::string payload;
  msg.SerializeTo(&payload);
  // Corrupt the u64 NDJSON length (offset: magic 4 + id count 4) to claim
  // more bytes than the buffer holds.
  payload[8] = '\xff';
  payload[9] = '\xff';
  EXPECT_TRUE(ChunkMessage::Deserialize(payload).status().IsCorruption());
}

TEST(ChunkMessageMalformedTest, OutOfRangePredicateIdViaExpand) {
  ChunkMessage msg;
  msg.chunk = MakeChunk({R"({"a":1})", R"({"a":2})"});
  msg.predicate_ids = {7};  // only 3 predicates exist server-side
  msg.annotations = BitVectorSet(1, 2);

  std::string payload;
  msg.SerializeTo(&payload);
  auto decoded = ChunkMessage::Deserialize(payload);
  ASSERT_TRUE(decoded.ok());  // wire format itself is fine
  EXPECT_TRUE(decoded->ExpandAnnotations(3).status().IsOutOfRange());
  // With a large enough registry the same message expands fine.
  auto expanded = decoded->ExpandAnnotations(8);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->num_predicates(), 8u);
  EXPECT_FALSE(expanded->vector(7).Any());  // the client's exact bits
  EXPECT_TRUE(expanded->vector(0).All());   // unevaluated -> maybe
}

// ---------- BoundedTransport ----------

TEST(BoundedTransportTest, FifoAndBytesSent) {
  BoundedTransport transport(/*capacity=*/4);
  ASSERT_TRUE(transport.Send("one").ok());
  ASSERT_TRUE(transport.Send("two").ok());
  EXPECT_EQ(transport.bytes_sent(), 6u);
  EXPECT_EQ(transport.pending(), 2u);
  EXPECT_EQ(**transport.Receive(), "one");
  EXPECT_EQ(**transport.Receive(), "two");
  EXPECT_EQ(transport.pending(), 0u);
}

TEST(BoundedTransportTest, CloseDrainsThenSignalsEnd) {
  BoundedTransport transport(4);
  transport.AddProducers(1);
  ASSERT_TRUE(transport.Send("a").ok());
  ASSERT_TRUE(transport.Send("b").ok());
  transport.ProducerDone();  // last producer -> closed
  EXPECT_TRUE(transport.closed());
  // Remaining messages still drain in order...
  EXPECT_EQ(**transport.Receive(), "a");
  EXPECT_EQ(**transport.Receive(), "b");
  // ...then receivers observe end-of-stream instead of blocking.
  auto end = transport.Receive();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(BoundedTransportTest, SendAfterCloseFails) {
  BoundedTransport transport(2);
  transport.Close();
  EXPECT_TRUE(transport.Send("late").IsIOError());
}

TEST(BoundedTransportTest, MultipleProducersCloseOnlyAfterLast) {
  BoundedTransport transport(2);
  transport.AddProducers(2);
  transport.ProducerDone();
  EXPECT_FALSE(transport.closed());
  transport.ProducerDone();
  EXPECT_TRUE(transport.closed());
}

TEST(BoundedTransportTest, BackpressureBlocksProducerUntilConsumed) {
  BoundedTransport transport(/*capacity=*/2);
  transport.AddProducers(1);
  std::atomic<int> sent{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(transport.Send(std::to_string(i)).ok());
      sent.fetch_add(1);
    }
    transport.ProducerDone();
  });

  // The producer can get at most capacity ahead of the consumer; give it
  // ample time to run into the wall.
  for (int spin = 0; spin < 100 && sent.load() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(sent.load(), 3);  // 2 queued + 1 possibly mid-Send
  EXPECT_LE(transport.pending(), 2u);

  int received = 0;
  while (true) {
    auto payload = transport.Receive();
    ASSERT_TRUE(payload.ok());
    if (!payload->has_value()) break;
    EXPECT_EQ(**payload, std::to_string(received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, 6);
  EXPECT_EQ(sent.load(), 6);
}

TEST(BoundedTransportTest, CloseUnblocksWaitingProducer) {
  BoundedTransport transport(1);
  ASSERT_TRUE(transport.Send("fill").ok());
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    failed = transport.Send("blocked").IsIOError();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.Close();
  producer.join();
  EXPECT_TRUE(failed.load());
}

TEST(BoundedTransportTest, ManyProducersManyConsumersConserveMessages) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr size_t kPerProducer = 200;

  BoundedTransport transport(/*capacity=*/8);
  transport.AddProducers(kProducers);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            transport.Send("p" + std::to_string(p) + ":" + std::to_string(i))
                .ok());
      }
      transport.ProducerDone();
    });
  }

  std::atomic<size_t> consumed{0};
  std::atomic<size_t> consumed_bytes{0};
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        auto payload = transport.Receive();
        ASSERT_TRUE(payload.ok());
        if (!payload->has_value()) break;
        consumed.fetch_add(1);
        consumed_bytes.fetch_add((*payload)->size());
      }
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_bytes.load(), transport.bytes_sent());
  EXPECT_EQ(transport.pending(), 0u);
}

}  // namespace
}  // namespace ciao
