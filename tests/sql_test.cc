#include <gtest/gtest.h>

#include "json/parser.h"
#include "predicate/semantic_eval.h"
#include "sql/parser.h"

namespace ciao::sql {
namespace {

TEST(SqlParserTest, FullCountQuery) {
  auto q = ParseQuery(
      "SELECT COUNT(*) FROM reviews WHERE stars = 5 AND text LIKE "
      "'%delicious%'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->clauses.size(), 2u);
  EXPECT_EQ(q->clauses[0].terms[0].CanonicalKey(), "kv:stars=5");
  EXPECT_EQ(q->clauses[1].terms[0].CanonicalKey(),
            "substr:text=\"delicious\"");
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  auto q = ParseQuery("select count(*) from t where a = 1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses.size(), 1u);
}

TEST(SqlParserTest, LiteralTypes) {
  auto q = ParseWhere(
      "s = 'text' AND i = 42 AND neg = -7 AND d = 2.5 AND b = TRUE AND "
      "f = false");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->clauses.size(), 6u);
  EXPECT_EQ(q->clauses[0].terms[0].kind, PredicateKind::kExactMatch);
  EXPECT_TRUE(q->clauses[1].terms[0].operand.is_int());
  EXPECT_EQ(q->clauses[2].terms[0].operand.as_int(), -7);
  EXPECT_TRUE(q->clauses[3].terms[0].operand.is_double());
  EXPECT_EQ(q->clauses[4].terms[0].operand.as_bool(), true);
  EXPECT_EQ(q->clauses[5].terms[0].operand.as_bool(), false);
}

TEST(SqlParserTest, DoubleQuotedStringsAndEscapes) {
  auto q = ParseWhere(R"(name = "Bo\"b")");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses[0].terms[0].operand.as_string(), "Bo\"b");
}

TEST(SqlParserTest, PresenceAndRange) {
  auto q = ParseWhere("email != NULL AND age < 30");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses[0].terms[0].kind, PredicateKind::kKeyPresence);
  EXPECT_EQ(q->clauses[1].terms[0].kind, PredicateKind::kRangeLess);
  EXPECT_EQ(q->clauses[1].terms[0].operand.as_int(), 30);
}

TEST(SqlParserTest, InListBecomesDisjunction) {
  auto q = ParseWhere("name IN ('Bob', 'John') AND age = 20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->clauses.size(), 2u);
  ASSERT_EQ(q->clauses[0].terms.size(), 2u);
  EXPECT_EQ(q->clauses[0].terms[0].CanonicalKey(), "exact:name=\"Bob\"");
  EXPECT_EQ(q->clauses[0].terms[1].CanonicalKey(), "exact:name=\"John\"");
  // Mixed-type IN list.
  auto q2 = ParseWhere("v IN (1, 2.5, 'x')");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->clauses[0].terms.size(), 3u);
}

TEST(SqlParserTest, ParenthesizedOrClause) {
  auto q = ParseWhere("(name = 'Bob' OR name = 'John') AND age = 20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->clauses.size(), 2u);
  EXPECT_EQ(q->clauses[0].terms.size(), 2u);
}

TEST(SqlParserTest, DottedFieldPaths) {
  auto q = ParseWhere("url.domain LIKE '%example.com%'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses[0].terms[0].field, "url.domain");
}

TEST(SqlParserTest, RoundTripsThroughToSql) {
  // ToSql output re-parses to the same canonical clause keys.
  const char* cases[] = {
      "stars = 5 AND text LIKE '%delicious%'",
      "(name = 'Bob' OR name = 'John') AND age = 20",
      "email != NULL",
  };
  for (const char* text : cases) {
    auto q1 = ParseWhere(text);
    ASSERT_TRUE(q1.ok()) << text;
    std::string sql = q1->ToSql();
    // Our ToSql uses double quotes — already accepted by the lexer.
    auto q2 = ParseQuery(sql);
    ASSERT_TRUE(q2.ok()) << sql;
    ASSERT_EQ(q1->clauses.size(), q2->clauses.size());
    for (size_t i = 0; i < q1->clauses.size(); ++i) {
      EXPECT_EQ(q1->clauses[i].CanonicalKey(), q2->clauses[i].CanonicalKey());
    }
  }
}

TEST(SqlParserTest, ParsedQueriesEvaluateCorrectly) {
  auto rec = json::Parse(
      R"({"name":"Bob","age":20,"text":"really delicious","email":null})");
  auto q = ParseWhere(
      "name IN ('Bob','John') AND age = 20 AND text LIKE '%delicious%'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(EvaluateQuery(*q, *rec));
  auto q2 = ParseWhere("email != NULL");
  EXPECT_FALSE(EvaluateQuery(*q2, *rec));
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a = 1").ok());  // not COUNT(*)
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t").ok());       // no WHERE
  EXPECT_FALSE(ParseWhere("a = ").ok());
  EXPECT_FALSE(ParseWhere("a != 5").ok());       // only != NULL
  EXPECT_FALSE(ParseWhere("a LIKE 'no_wildcards'").ok());
  EXPECT_FALSE(ParseWhere("a LIKE '%mid%dle%'").ok());
  EXPECT_FALSE(ParseWhere("a < 'string'").ok());
  EXPECT_FALSE(ParseWhere("a = 'unterminated").ok());
  EXPECT_FALSE(ParseWhere("a = 1 extra").ok());
  EXPECT_FALSE(ParseWhere("(a = 1 OR b = 2").ok());   // missing ')'
  EXPECT_FALSE(ParseWhere("a IN ()").ok());
  EXPECT_FALSE(ParseWhere("a = 1 AND").ok());
  EXPECT_FALSE(ParseWhere("@#!").ok());
  // Errors carry offsets.
  auto r = ParseWhere("a = ");
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace ciao::sql
