#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/random.h"
#include "matcher/compiled_pattern.h"
#include "matcher/kernels.h"

namespace ciao {
namespace {

// All kernels must implement std::string_view::find semantics exactly.
// Parameterized over the kernel so every case runs under every kernel.
class KernelTest : public ::testing::TestWithParam<SearchKernel> {
 protected:
  size_t FindWith(std::string_view hay, std::string_view needle,
                  size_t from = 0) const {
    return Find(GetParam(), hay, needle, from);
  }
};

TEST_P(KernelTest, BasicHits) {
  EXPECT_EQ(FindWith("hello world", "world"), 6u);
  EXPECT_EQ(FindWith("hello world", "hello"), 0u);
  EXPECT_EQ(FindWith("aaa", "a"), 0u);
  EXPECT_EQ(FindWith("abcabc", "bc"), 1u);
}

TEST_P(KernelTest, Misses) {
  EXPECT_EQ(FindWith("hello", "world"), std::string_view::npos);
  EXPECT_EQ(FindWith("abc", "abcd"), std::string_view::npos);
  EXPECT_EQ(FindWith("", "a"), std::string_view::npos);
}

TEST_P(KernelTest, EmptyNeedleSemantics) {
  EXPECT_EQ(FindWith("abc", ""), 0u);
  EXPECT_EQ(FindWith("abc", "", 2), 2u);
  EXPECT_EQ(FindWith("abc", "", 3), 3u);
  EXPECT_EQ(FindWith("abc", "", 4), std::string_view::npos);
  EXPECT_EQ(FindWith("", ""), 0u);
}

TEST_P(KernelTest, FromOffset) {
  EXPECT_EQ(FindWith("abcabcabc", "abc", 1), 3u);
  EXPECT_EQ(FindWith("abcabcabc", "abc", 7), std::string_view::npos);
  EXPECT_EQ(FindWith("abc", "c", 99), std::string_view::npos);
}

TEST_P(KernelTest, OverlappingPatterns) {
  EXPECT_EQ(FindWith("aaaa", "aa"), 0u);
  EXPECT_EQ(FindWith("aaaa", "aa", 1), 1u);
  EXPECT_EQ(FindWith("ababab", "abab"), 0u);
  EXPECT_EQ(FindWith("ababab", "abab", 1), 2u);
}

// Degenerate needles across every kernel: empty, 1-byte, and needles
// longer than the haystack must all follow find() exactly (FindSwar once
// routed 1-byte needles through its two-byte probe setup).
TEST_P(KernelTest, DegenerateNeedles) {
  // 1-byte needles, including hay edges and from-offsets.
  EXPECT_EQ(FindWith("abc", "a"), 0u);
  EXPECT_EQ(FindWith("abc", "c"), 2u);
  EXPECT_EQ(FindWith("abc", "b", 1), 1u);
  EXPECT_EQ(FindWith("abc", "b", 2), std::string_view::npos);
  EXPECT_EQ(FindWith("", "a"), std::string_view::npos);
  EXPECT_EQ(FindWith("x", "x"), 0u);
  // Empty needle at every from (clamped at hay.size()).
  EXPECT_EQ(FindWith("", ""), 0u);
  EXPECT_EQ(FindWith("ab", "", 2), 2u);
  EXPECT_EQ(FindWith("ab", "", 3), std::string_view::npos);
  // Needle longer than the hay (and longer than the remaining suffix).
  EXPECT_EQ(FindWith("ab", "abc"), std::string_view::npos);
  EXPECT_EQ(FindWith("", "abc"), std::string_view::npos);
  EXPECT_EQ(FindWith("abcdef", "cdefgh", 2), std::string_view::npos);
}

// The degenerate routing applies to both SWAR entry points directly.
TEST(SwarKernelTest, DegenerateNeedlesRouteToMemchr) {
  for (auto* fn : {&FindSwar, &FindSwarFallback}) {
    EXPECT_EQ((*fn)("hello", "l", 0), 2u);
    EXPECT_EQ((*fn)("hello", "l", 3), 3u);
    EXPECT_EQ((*fn)("hello", "z", 0), std::string_view::npos);
    EXPECT_EQ((*fn)("hello", "", 0), 0u);
    EXPECT_EQ((*fn)("hello", "", 5), 5u);
    EXPECT_EQ((*fn)("hello", "", 6), std::string_view::npos);
    EXPECT_EQ((*fn)("hi", "high", 0), std::string_view::npos);
  }
}

TEST_P(KernelTest, MatchAtEnd) {
  EXPECT_EQ(FindWith("xxxyz", "yz"), 3u);
  EXPECT_EQ(FindWith("xyz", "xyz"), 0u);
  EXPECT_EQ(FindWith("x", "x"), 0u);
}

TEST_P(KernelTest, BinarySafety) {
  const std::string hay("a\0b\0c", 5);
  const std::string needle("\0c", 2);
  EXPECT_EQ(FindWith(hay, needle), 3u);
  EXPECT_EQ(FindWith(hay, std::string("\xFF", 1)), std::string_view::npos);
}

TEST_P(KernelTest, PropertyAgainstStdFind) {
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 3000; ++iter) {
    // Small alphabet forces frequent partial matches.
    const size_t hay_len = rng.NextBounded(60);
    std::string hay;
    for (size_t i = 0; i < hay_len; ++i) {
      hay.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    const size_t needle_len = rng.NextBounded(8);
    std::string needle;
    if (rng.NextBool(0.5) && needle_len <= hay.size() && !hay.empty()) {
      // True substring half the time.
      const size_t start = rng.NextBounded(hay.size() - needle_len + 1);
      needle = hay.substr(start, needle_len);
    } else {
      for (size_t i = 0; i < needle_len; ++i) {
        needle.push_back(static_cast<char>('a' + rng.NextBounded(4)));
      }
    }
    const size_t from = rng.NextBounded(hay.size() + 3);
    const size_t expected = std::string_view(hay).find(needle, from);
    EXPECT_EQ(FindWith(hay, needle, from), expected)
        << "hay=" << hay << " needle=" << needle << " from=" << from
        << " kernel=" << SearchKernelName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(AllSearchKernels()),
                         [](const auto& info) {
                           return std::string(SearchKernelName(info.param));
                         });

TEST(KernelRegistryTest, NamesAndList) {
  EXPECT_EQ(SearchKernelName(SearchKernel::kStdFind), "std_find");
  EXPECT_EQ(SearchKernelName(SearchKernel::kMemchr), "memchr");
  EXPECT_EQ(SearchKernelName(SearchKernel::kHorspool), "horspool");
  EXPECT_EQ(SearchKernelName(SearchKernel::kSwar), "swar");
  EXPECT_EQ(AllSearchKernels().size(), 4u);
}

TEST(HorspoolTableTest, ShiftValues) {
  const HorspoolTable t = HorspoolTable::Build("abcab");
  // Default shift = pattern length for absent chars.
  EXPECT_EQ(t.shift[static_cast<unsigned char>('z')], 5u);
  // Last occurrence before final char decides shift.
  EXPECT_EQ(t.shift[static_cast<unsigned char>('a')], 1u);  // index 3
  EXPECT_EQ(t.shift[static_cast<unsigned char>('b')], 3u);  // index 1 wait: last b before end is index 4? pattern abcab: b at 1 and 4; final char excluded -> b at 1 -> 5-1-1=3
  EXPECT_EQ(t.shift[static_cast<unsigned char>('c')], 2u);  // index 2
}

// The generic property test stays below one vector block; this one drives
// FindSwar across its block boundaries: long needles (clamped candidate
// masks), matches straddling the 16/8-byte block edge, and matches found
// only by the scalar tail loop. The hay alphabet includes the XOR-by-1
// neighbors of the needle bytes ('`'='a'^1, 'c'='b'^1) so the non-SSE2
// SWAR fallback's borrow-propagation false positives are exercised.
TEST(SwarKernelTest, BlockBoundariesAndLongNeedles) {
  static constexpr char kHayAlphabet[] = {'a', 'b', '`', 'c'};
  Rng rng(0xF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t hay_len = rng.NextBounded(90);
    std::string hay;
    for (size_t i = 0; i < hay_len; ++i) {
      hay.push_back(kHayAlphabet[rng.NextBounded(4)]);
    }
    const size_t needle_len = rng.NextBounded(40);
    std::string needle;
    if (rng.NextBool(0.5) && needle_len <= hay.size() && !hay.empty()) {
      const size_t start = rng.NextBounded(hay.size() - needle_len + 1);
      needle = hay.substr(start, needle_len);
    } else {
      for (size_t i = 0; i < needle_len; ++i) {
        needle.push_back(static_cast<char>('a' + rng.NextBounded(3)));
      }
    }
    const size_t from = rng.NextBounded(hay.size() + 3);
    const size_t expected = std::string_view(hay).find(needle, from);
    EXPECT_EQ(FindSwar(hay, needle, from), expected)
        << "hay=" << hay << " needle=" << needle << " from=" << from;
    // The portable fallback is always compiled; pin it to the same
    // oracle so x86 CI covers the non-SSE2 build too.
    EXPECT_EQ(FindSwarFallback(hay, needle, from), expected)
        << "fallback hay=" << hay << " needle=" << needle
        << " from=" << from;
  }
}

// Concrete borrow-propagation counterexample: a first-byte match followed
// by needle[0]^1 then needle[1] must not report a match on either path.
TEST(SwarKernelTest, BorrowNeighborBytesDoNotFalsePositive) {
  EXPECT_EQ(FindSwar("a`b______", "ab"), std::string_view::npos);
  EXPECT_EQ(FindSwarFallback("a`b______", "ab"), std::string_view::npos);
  EXPECT_EQ(FindSwar("a`bab____", "ab"), 3u);
  EXPECT_EQ(FindSwarFallback("a`bab____", "ab"), 3u);
}

TEST(CompiledPatternTest, MatchesAcrossKernels) {
  for (const SearchKernel kernel : AllSearchKernels()) {
    const CompiledPattern p("needle", kernel);
    EXPECT_TRUE(p.Matches("a haystack with a needle inside"));
    EXPECT_FALSE(p.Matches("a haystack without one"));
    EXPECT_EQ(p.FindIn("needle"), 0u);
    EXPECT_EQ(p.pattern(), "needle");
    EXPECT_EQ(p.length(), 6u);
    EXPECT_EQ(p.kernel(), kernel);
  }
}

TEST(CompiledPatternTest, DefaultConstructedIsEmptyPattern) {
  const CompiledPattern p;
  EXPECT_EQ(p.length(), 0u);
  EXPECT_TRUE(p.Matches("anything"));  // empty pattern matches everywhere
}

}  // namespace
}  // namespace ciao
