// A tiny SQL shell over a CIAO-loaded table: generates one of the three
// simulated datasets, plans a pushdown for a triage workload, ingests the
// stream, then answers COUNT(*) queries typed as SQL — showing per-query
// plan choice (bitvector skipping vs full scan) and rows skipped.
//
// Usage:
//   ./build/examples/sql_shell [yelp|winlog|ycsb] [budget_us] [n_records]
//   then type queries like:
//     SELECT COUNT(*) FROM t WHERE stars = 5 AND text LIKE '%delicious%'
//   or just the WHERE part:
//     stars = 5
//   empty line or EOF exits.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/system.h"
#include "sql/parser.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

using namespace ciao;

int main(int argc, char** argv) {
  workload::DatasetKind kind = workload::DatasetKind::kYelp;
  if (argc > 1) {
    if (std::strcmp(argv[1], "winlog") == 0) {
      kind = workload::DatasetKind::kWinLog;
    } else if (std::strcmp(argv[1], "ycsb") == 0) {
      kind = workload::DatasetKind::kYcsb;
    }
  }
  const double budget = argc > 2 ? std::atof(argv[2]) : 5.0;
  const size_t n_records =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 20000;

  workload::GeneratorOptions gen;
  gen.num_records = n_records;
  gen.seed = 42;
  const workload::Dataset ds = workload::GenerateDataset(kind, gen);

  // Prospective workload for planning: a skewed draw over the dataset's
  // Table II templates.
  const auto pool = workload::TemplatesFor(kind).AllCandidates();
  workload::WorkloadSpec spec;
  spec.num_queries = 50;
  spec.distribution = workload::PredicateDistribution::kZipfian;
  spec.zipf_s = 2.0;
  spec.seed = 9;
  const Workload wl = workload::GenerateWorkload(pool, spec);

  CiaoConfig config;
  config.budget_us = budget;
  config.sample_size = 2000;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  if (!system.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  if (!(*system)->IngestRecords(ds.records).ok()) return 1;

  std::printf(
      "loaded %s: %zu records, budget %.1fus -> %zu predicates pushed, "
      "loading ratio %.2f, partial loading %s\n",
      ds.name.c_str(), ds.records.size(), budget,
      (*system)->registry().size(), (*system)->load_stats().LoadingRatio(),
      (*system)->partial_loading_enabled() ? "on" : "off");
  std::printf("type a COUNT(*) query (or just a WHERE expression); empty "
              "line quits.\n\n");

  char line[4096];
  while (true) {
    std::printf("ciao> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (text.empty()) break;

    Result<Query> query = text.find("SELECT") != std::string::npos ||
                                  text.find("select") != std::string::npos
                              ? sql::ParseQuery(text)
                              : sql::ParseWhere(text);
    if (!query.ok()) {
      std::printf("  error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto result = (*system)->ExecuteQuery(*query);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf(
        "  count=%llu  plan=%s  time=%.3fms  rows_skipped=%llu  "
        "groups_skipped=%llu (+%llu by zone maps)\n",
        static_cast<unsigned long long>(result->count),
        std::string(PlanKindName(result->plan)).c_str(),
        result->seconds * 1e3,
        static_cast<unsigned long long>(result->stats.rows_skipped),
        static_cast<unsigned long long>(result->stats.groups_skipped),
        static_cast<unsigned long long>(result->stats.groups_skipped_zonemap));
  }
  return 0;
}
