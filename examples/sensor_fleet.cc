// Scenario: a fleet of heterogeneous edge clients (the paper's abstract:
// "CIAO will address the trade-off between client cost and server
// savings by setting different budgets for different clients"). A beefy
// gateway can afford the full predicate set; a battery-powered sensor
// only the cheapest predicate; a legacy device none. The server remains
// correct regardless, treating unevaluated predicates conservatively.
//
// Build & run:  ./build/examples/sensor_fleet

#include <cstdio>

#include "client/coordinator.h"
#include "engine/executor.h"
#include "storage/partial_loader.h"
#include "storage/transport.h"
#include "workload/dataset.h"
#include "workload/selectivity.h"
#include "workload/templates.h"

using namespace ciao;

int main() {
  workload::GeneratorOptions gen;
  gen.num_records = 9000;
  gen.seed = 31;
  const workload::Dataset ds = workload::GenerateYcsb(gen);
  std::printf("sensor_fleet: %zu customer documents (%.1f MB JSON)\n\n",
              ds.records.size(),
              static_cast<double>(ds.TotalBytes()) / 1e6);

  // Prospective predicates (selected offline; here chosen directly).
  const auto pool = workload::TemplatesFor(workload::DatasetKind::kYcsb);
  std::vector<Clause> pushed = {
      pool.templates[4].instantiate(0),  // age_group = "child"  (sel ~.1)
      pool.templates[3].instantiate(2),  // phone_country = "cn" (sel ~.15)
      pool.templates[8].instantiate(1),  // email LIKE "@yahoo.com"
  };

  auto est = workload::EstimateClauseStats(ds.records, pushed, 2000, 1);
  if (!est.ok()) return 1;
  PredicateRegistry registry;
  const CostModel cost_model = CostModel::Default();
  for (size_t i = 0; i < pushed.size(); ++i) {
    auto cost = cost_model.ClauseCostUs(
        pushed[i], est->clause_stats[i].term_selectivities,
        est->mean_record_len);
    if (!registry
             .Register(pushed[i], est->clause_stats[i].selectivity, *cost)
             .ok()) {
      return 1;
    }
  }

  InMemoryTransport transport;
  MultiClientCoordinator coordinator(&registry, &transport, 500);
  const size_t gateway = coordinator.AddClient({"gateway", 50.0});
  const size_t sensor = coordinator.AddClient({"battery-sensor", 1.0});
  const size_t legacy = coordinator.AddClient({"legacy-device", 0.0});

  for (size_t c = 0; c < coordinator.num_clients(); ++c) {
    std::printf("client %-15s budget %5.1fus -> evaluates %zu/%zu "
                "predicates\n",
                coordinator.spec(c).name.c_str(),
                coordinator.spec(c).budget_us,
                coordinator.assigned_ids(c).size(), registry.size());
  }

  // Each client uploads a third of the stream.
  const size_t third = ds.records.size() / 3;
  const std::vector<std::string> parts[3] = {
      {ds.records.begin(), ds.records.begin() + third},
      {ds.records.begin() + third, ds.records.begin() + 2 * third},
      {ds.records.begin() + 2 * third, ds.records.end()},
  };
  if (!coordinator.session(gateway)->SendRecords(parts[0]).ok()) return 1;
  if (!coordinator.session(sensor)->SendRecords(parts[1]).ok()) return 1;
  if (!coordinator.session(legacy)->SendRecords(parts[2]).ok()) return 1;

  // Server: drain and partially load.
  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, registry.size());
  LoadStats stats;
  while (true) {
    auto payload = transport.Receive();
    if (!payload.ok() || !payload->has_value()) break;
    auto msg = ChunkMessage::Deserialize(**payload);
    if (!msg.ok()) return 1;
    auto annotations = msg->ExpandAnnotations(registry.size());
    if (!annotations.ok()) return 1;
    if (!loader
             .IngestChunk(msg->chunk, *annotations,
                          /*partial_loading_enabled=*/true, &catalog, &stats)
             .ok()) {
      return 1;
    }
  }
  std::printf("\nserver: loaded %llu / %llu records (ratio %.2f) — the "
              "legacy client's records all load (no bitvectors = maybe), "
              "the gateway's load partially\n\n",
              static_cast<unsigned long long>(stats.records_loaded),
              static_cast<unsigned long long>(stats.records_in),
              stats.LoadingRatio());

  // Queries over the pushed predicates stay exact.
  QueryExecutor executor(&catalog, &registry);
  for (const Clause& c : pushed) {
    Query q;
    q.clauses = {c};
    auto result = executor.Execute(q);
    if (!result.ok()) return 1;
    std::printf("%-45s count=%-6llu plan=%s skipped=%llu\n",
                q.ToSql().c_str(),
                static_cast<unsigned long long>(result->count),
                std::string(PlanKindName(result->plan)).c_str(),
                static_cast<unsigned long long>(result->stats.rows_skipped));
  }
  return 0;
}
