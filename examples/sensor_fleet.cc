// Scenario: a fleet of heterogeneous edge clients (the paper's abstract:
// "CIAO will address the trade-off between client cost and server
// savings by setting different budgets for different clients"). A beefy
// gateway can afford the full predicate set; a battery-powered sensor
// only the cheapest predicate; a legacy device none — and the sensor is
// also 10x slower than the gateway. The fleet scheduler assigns each
// client the best predicate subset its budget affords, work stealing
// keeps the straggler from gating ingest, and the server completes the
// predicates a chunk's client skipped, so loading stays exact.
//
// Build & run:  ./build/examples/sensor_fleet

#include <cstdio>

#include "client/fleet.h"
#include "engine/executor.h"
#include "storage/partial_loader.h"
#include "storage/transport.h"
#include "workload/dataset.h"
#include "workload/selectivity.h"
#include "workload/templates.h"

using namespace ciao;

int main() {
  workload::GeneratorOptions gen;
  gen.num_records = 9000;
  gen.seed = 31;
  const workload::Dataset ds = workload::GenerateYcsb(gen);
  std::printf("sensor_fleet: %zu customer documents (%.1f MB JSON)\n\n",
              ds.records.size(),
              static_cast<double>(ds.TotalBytes()) / 1e6);

  // Prospective predicates (selected offline; here chosen directly).
  const auto pool = workload::TemplatesFor(workload::DatasetKind::kYcsb);
  std::vector<Clause> pushed = {
      pool.templates[4].instantiate(0),  // age_group = "child"  (sel ~.1)
      pool.templates[3].instantiate(2),  // phone_country = "cn" (sel ~.15)
      pool.templates[8].instantiate(1),  // email LIKE "@yahoo.com"
  };

  auto est = workload::EstimateClauseStats(ds.records, pushed, 2000, 1);
  if (!est.ok()) return 1;
  PredicateRegistry registry;
  const CostModel cost_model = CostModel::Default();
  for (size_t i = 0; i < pushed.size(); ++i) {
    auto cost = cost_model.ClauseCostUs(
        pushed[i], est->clause_stats[i].term_selectivities,
        est->mean_record_len);
    if (!registry
             .Register(pushed[i], est->clause_stats[i].selectivity, *cost)
             .ok()) {
      return 1;
    }
  }

  BoundedTransport transport(/*capacity=*/16);
  transport.AddProducers(1);

  // Server side first, so loading overlaps the fleet's prefiltering.
  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, registry, /*annotation_epoch=*/0,
                       /*server_completion=*/true);
  LoaderPool loaders(&loader, &transport, &catalog, {});
  loaders.Start();

  // The heterogeneous fleet: budget-aware allocation + work stealing.
  FleetScheduler fleet(&registry, &transport,
                       {
                           {"gateway", 50.0},
                           {"battery-sensor", 1.0, /*speed_factor=*/0.1},
                           {"legacy-device", 0.0},
                       },
                       FleetOptions{/*chunk_size=*/500});
  for (size_t c = 0; c < fleet.num_clients(); ++c) {
    std::printf("client %-15s budget %5.1fus speed %.1fx -> evaluates "
                "%zu/%zu predicates (%.2fus/record)\n",
                fleet.spec(c).name.c_str(), fleet.spec(c).budget_us,
                fleet.spec(c).speed_factor, fleet.assigned_ids(c).size(),
                registry.size(), fleet.allocation(c).cost_us);
  }

  if (!fleet.SendRecords(ds.records).ok()) return 1;
  transport.ProducerDone();
  if (!loaders.Join().ok()) return 1;

  const LoadStats& stats = loaders.stats();
  std::printf("\nfleet: %llu chunks stolen from stragglers; server "
              "completed %llu (chunk, predicate) pairs in %.3fs\n",
              static_cast<unsigned long long>(fleet.steals()),
              static_cast<unsigned long long>(stats.predicates_completed),
              stats.completion_seconds);
  for (size_t c = 0; c < fleet.num_clients(); ++c) {
    const FleetClientStats& cs = fleet.client_stats(c);
    std::printf("client %-15s chunks=%-4llu stolen=%-4llu prefilter=%.3fs\n",
                fleet.spec(c).name.c_str(),
                static_cast<unsigned long long>(cs.chunks_processed),
                static_cast<unsigned long long>(cs.chunks_stolen),
                cs.prefilter.seconds);
  }
  std::printf("\nserver: loaded %llu / %llu records (ratio %.2f) — exact "
              "bits per chunk, no matter which client shipped it\n\n",
              static_cast<unsigned long long>(stats.records_loaded),
              static_cast<unsigned long long>(stats.records_in),
              stats.LoadingRatio());

  // Queries over the pushed predicates stay exact.
  QueryExecutor executor(&catalog, &registry);
  for (const Clause& c : pushed) {
    Query q;
    q.clauses = {c};
    auto result = executor.Execute(q);
    if (!result.ok()) return 1;
    std::printf("%-45s count=%-6llu plan=%s skipped=%llu\n",
                q.ToSql().c_str(),
                static_cast<unsigned long long>(result->count),
                std::string(PlanKindName(result->plan)).c_str(),
                static_cast<unsigned long long>(result->stats.rows_skipped));
  }
  return 0;
}
