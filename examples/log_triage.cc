// Scenario: a log server collects syslog events from a fleet (the
// paper's motivating deployment, §I). The triage workload repeatedly
// asks for specific operations and time windows. This example compares
// the baseline (budget 0: eager full loading) against CIAO with a small
// client budget, printing the paper's three phase timings.
//
// Build & run:  ./build/examples/log_triage [num_records]

#include <cstdio>
#include <cstdlib>

#include "core/system.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

using namespace ciao;

namespace {

EndToEndReport RunOnce(const workload::Dataset& ds, const Workload& wl,
                       double budget_us, const char* label) {
  CiaoConfig config;
  config.budget_us = budget_us;
  config.sample_size = 1500;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      CostModel::Default());
  if (!system.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 system.status().ToString().c_str());
    std::exit(1);
  }
  if (!(*system)->IngestRecords(ds.records).ok()) std::exit(1);
  if (!(*system)->ExecuteWorkload().ok()) std::exit(1);
  return (*system)->BuildReport(label);
}

}  // namespace

int main(int argc, char** argv) {
  workload::GeneratorOptions gen;
  gen.num_records = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                             : 20000;
  gen.seed = 2024;
  const workload::Dataset ds = workload::GenerateWinLog(gen);
  std::printf("log_triage: %zu syslog events (%.1f MB JSON)\n",
              ds.records.size(),
              static_cast<double>(ds.TotalBytes()) / 1e6);

  // Triage queries: a skewed workload over the Table II log templates
  // (a few hot operations dominate, as in real incident response).
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  workload::WorkloadSpec spec;
  spec.num_queries = 60;
  spec.distribution = workload::PredicateDistribution::kZipfian;
  spec.zipf_s = 2.2;
  spec.seed = 7;
  const Workload wl = workload::GenerateWorkload(pool, spec);
  std::printf("triage workload: %zu queries, %zu distinct predicates\n\n",
              wl.queries.size(), wl.DistinctClauses().size());

  std::vector<EndToEndReport> reports;
  reports.push_back(RunOnce(ds, wl, 0.0, "baseline (budget 0)"));
  reports.push_back(RunOnce(ds, wl, 2.0, "CIAO (budget 2us)"));
  reports.push_back(RunOnce(ds, wl, 6.0, "CIAO (budget 6us)"));
  std::printf("%s\n", FormatReports(reports).c_str());

  const EndToEndReport& base = reports[0];
  const EndToEndReport& ciao6 = reports[2];
  std::printf("with 6us/record of client assistance: loading %.1fx faster, "
              "queries %.1fx faster, end-to-end %.1fx faster\n",
              base.loading_seconds / std::max(1e-9, ciao6.loading_seconds),
              base.query_seconds / std::max(1e-9, ciao6.query_seconds),
              base.TotalSeconds() / std::max(1e-9, ciao6.TotalSeconds()));
  return 0;
}
