// Scenario: deploying CIAO on new hardware. The cost model's constants
// k1..k4 and c are hardware-dependent (paper §V-D); this tool measures
// real substring searches on this machine over the three simulated
// datasets, fits the model by multivariate regression, and reports the
// coefficients + R^2 (what Table IV does per platform).
//
// Build & run:  ./build/examples/calibrate_cost_model

#include <cstdio>

#include "costmodel/calibration.h"
#include "costmodel/regression.h"
#include "workload/dataset.h"

using namespace ciao;

int main() {
  std::printf("calibrating the predicate cost model on this host...\n\n");

  for (const auto kind :
       {workload::DatasetKind::kYelp, workload::DatasetKind::kWinLog,
        workload::DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 3000;
    gen.seed = 99;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const auto patterns = BuildProbePatterns(ds.records, 100, 13);

    auto result = CalibrateWallClock(ds.records, patterns,
                                     SearchKernel::kStdFind, /*repeats=*/3);
    if (!result.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s mean_len=%5.0fB  R^2=%.3f  %s\n", ds.name.c_str(),
                ds.MeanRecordLength(), result->model.r_squared(),
                result->model.coefficients().ToString().c_str());

    // Show a few observations vs. predictions.
    std::printf("   sel    len_p  measured_us  predicted_us\n");
    for (size_t i = 0; i < result->observations.size(); i += 25) {
      const CostObservation& o = result->observations[i];
      std::printf("   %.3f  %5.0f  %10.4f  %12.4f\n", o.selectivity, o.len_p,
                  o.measured_us,
                  result->model.PredictUs(o.selectivity, o.len_p, o.len_t));
    }
    std::printf("\n");
  }
  std::printf(
      "use these coefficients in CiaoConfig by constructing CostModel with "
      "them (CostModel::Default() ships laptop-scale constants).\n");
  return 0;
}
