// Quickstart: the whole CIAO pipeline on a handful of inline records.
//
//   1. Declare a schema and a prospective query workload.
//   2. Bootstrap a CiaoSystem with a client budget — the optimizer picks
//      which predicates to push down to the client.
//   3. Ingest records: the client prefilters them with substring
//      matching, the server partially loads only relevant records.
//   4. Execute queries: pushed-down predicates skip rows via bitvectors.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/system.h"

using namespace ciao;

int main() {
  // A tiny "sensor events" table.
  columnar::Schema schema({
      {"sensor", columnar::ColumnType::kString},
      {"level", columnar::ColumnType::kString},
      {"value", columnar::ColumnType::kInt64},
      {"message", columnar::ColumnType::kString},
  });

  std::vector<std::string> records = {
      R"({"sensor":"s1","level":"info","value":10,"message":"heartbeat ok"})",
      R"({"sensor":"s2","level":"error","value":99,"message":"overheat detected"})",
      R"({"sensor":"s1","level":"info","value":12,"message":"heartbeat ok"})",
      R"({"sensor":"s3","level":"warn","value":50,"message":"voltage drift"})",
      R"({"sensor":"s2","level":"error","value":97,"message":"overheat detected"})",
      R"({"sensor":"s1","level":"info","value":11,"message":"heartbeat ok"})",
      R"({"sensor":"s3","level":"info","value":48,"message":"voltage stable"})",
      R"({"sensor":"s2","level":"error","value":95,"message":"fan failure"})",
  };

  // Prospective queries: operators mostly look for trouble.
  Query errors;
  errors.name = "errors";
  errors.clauses = {Clause::Of(SimplePredicate::Exact("level", "error"))};

  Query overheat;
  overheat.name = "overheat";
  overheat.clauses = {
      Clause::Of(SimplePredicate::Exact("level", "error")),
      Clause::Of(SimplePredicate::Substring("message", "overheat"))};

  Workload workload;
  workload.queries = {errors, overheat};

  // Budget: 2 microseconds of client CPU per record.
  CiaoConfig config;
  config.budget_us = 2.0;
  config.chunk_size = 4;
  config.sample_size = 8;

  auto system = CiaoSystem::Bootstrap(schema, workload, records, config,
                                      CostModel::Default());
  if (!system.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  std::printf("pushed-down predicates (%zu):\n",
              (*system)->registry().size());
  for (const auto& p : (*system)->registry().predicates()) {
    std::printf("  [%u] %s   patterns:", p.id, p.clause.ToSql().c_str());
    for (const auto& s : p.pattern_strings) std::printf(" %s", s.c_str());
    std::printf("  (sel=%.2f, cost=%.2fus)\n", p.selectivity, p.cost_us);
  }
  std::printf("partial loading: %s\n\n",
              (*system)->partial_loading_enabled() ? "enabled" : "disabled");

  if (Status st = (*system)->IngestRecords(records); !st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const LoadStats& ls = (*system)->load_stats();
  std::printf("ingest: %llu records -> %llu loaded to columnar, %llu left "
              "raw (loading ratio %.2f)\n\n",
              static_cast<unsigned long long>(ls.records_in),
              static_cast<unsigned long long>(ls.records_loaded),
              static_cast<unsigned long long>(ls.records_sidelined),
              ls.LoadingRatio());

  for (const Query& q : workload.queries) {
    auto result = (*system)->ExecuteQuery(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n  -> count=%llu  plan=%s  rows_skipped=%llu\n",
                q.ToSql().c_str(),
                static_cast<unsigned long long>(result->count),
                std::string(PlanKindName(result->plan)).c_str(),
                static_cast<unsigned long long>(result->stats.rows_skipped));
  }
  return 0;
}
